package ncdf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"esse/internal/grid"
	"esse/internal/ocean"
	"esse/internal/rng"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	f := New()
	f.Attrs["title"] = "test dataset"
	if err := f.AddDim("x", 4); err != nil {
		t.Fatal(err)
	}
	if err := f.AddDim("y", 3); err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 12)
	for i := range data {
		data[i] = float64(i)
	}
	if err := f.AddVar("T", []string{"y", "x"}, map[string]string{"units": "degC"}, data); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAddDimValidation(t *testing.T) {
	f := New()
	if err := f.AddDim("x", 0); err == nil {
		t.Fatal("zero-length dimension accepted")
	}
	_ = f.AddDim("x", 2)
	if err := f.AddDim("x", 3); err == nil {
		t.Fatal("duplicate dimension accepted")
	}
}

func TestAddVarValidation(t *testing.T) {
	f := New()
	_ = f.AddDim("x", 4)
	if err := f.AddVar("T", []string{"nope"}, nil, []float64{1}); err == nil {
		t.Fatal("unknown dimension accepted")
	}
	if err := f.AddVar("T", []string{"x"}, nil, []float64{1, 2}); err == nil {
		t.Fatal("data/shape mismatch accepted")
	}
	if err := f.AddVar("T", []string{"x"}, nil, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddVar("T", []string{"x"}, nil, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("duplicate variable accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["title"] != "test dataset" {
		t.Fatal("global attrs lost")
	}
	v, ok := got.Var("T")
	if !ok {
		t.Fatal("variable lost")
	}
	if v.Attrs["units"] != "degC" {
		t.Fatal("variable attrs lost")
	}
	for i, x := range v.Data {
		if x != float64(i) {
			t.Fatalf("data[%d] = %v", i, x)
		}
	}
	if d, ok := got.Dim("y"); !ok || d.Len != 3 {
		t.Fatal("dimension lost")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x01
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("not a dataset at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHyperSlabFull(t *testing.T) {
	f := sampleFile(t)
	v, _ := f.Var("T")
	out, err := f.HyperSlab(v, []int{0, 0}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 12 || out[5] != 5 {
		t.Fatalf("full slab wrong: %v", out)
	}
}

func TestHyperSlabInterior(t *testing.T) {
	f := sampleFile(t)
	v, _ := f.Var("T")
	// Rows 1..2, cols 1..2 of the 3x4 array laid out row-major:
	// row1: 5,6 ; row2: 9,10
	out, err := f.HyperSlab(v, []int{1, 1}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 9, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("slab = %v, want %v", out, want)
		}
	}
}

func TestHyperSlabBounds(t *testing.T) {
	f := sampleFile(t)
	v, _ := f.Var("T")
	cases := [][2][]int{
		{{0}, {1}},        // wrong rank
		{{0, 0}, {4, 4}},  // count overflow
		{{-1, 0}, {1, 1}}, // negative start
		{{0, 0}, {0, 1}},  // zero count
		{{3, 0}, {1, 1}},  // start at edge
	}
	for i, c := range cases {
		if _, err := f.HyperSlab(v, c[0], c[1]); err == nil {
			t.Fatalf("case %d accepted: %v", i, c)
		}
	}
}

func TestDDSFormat(t *testing.T) {
	f := sampleFile(t)
	dds := f.DDS("ocean")
	for _, want := range []string{"Dataset {", "Float64 T[y = 3][x = 4];", "} ocean;"} {
		if !strings.Contains(dds, want) {
			t.Fatalf("DDS missing %q:\n%s", want, dds)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	g := grid.MontereyBay(8, 8, 3)
	m := ocean.New(ocean.DefaultConfig(g), rng.New(1))
	m.Run(5)
	state := m.State(nil)
	f, err := FromState(m.Layout, state, map[string]string{"member": "42"})
	if err != nil {
		t.Fatal(err)
	}
	// Serialize through the binary format too.
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	f2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToState(f2, m.Layout)
	if err != nil {
		t.Fatal(err)
	}
	for i := range state {
		if state[i] != back[i] {
			t.Fatalf("state[%d] changed through ncdf round trip", i)
		}
	}
	if f2.Attrs["member"] != "42" {
		t.Fatal("global attribute lost")
	}
	// eta must be 2-D, T 3-D.
	eta, _ := f2.Var("eta")
	if len(eta.Dims) != 2 {
		t.Fatalf("eta rank %d", len(eta.Dims))
	}
	tv, _ := f2.Var("T")
	if len(tv.Dims) != 3 {
		t.Fatalf("T rank %d", len(tv.Dims))
	}
}

func TestToStateMissingVariable(t *testing.T) {
	g := grid.MontereyBay(6, 6, 2)
	l := grid.NewLayout(g, ocean.Vars(g))
	f := New()
	_ = f.AddDim("lon", 6)
	if _, err := ToState(f, l); err == nil {
		t.Fatal("dataset without variables accepted")
	}
}

func TestReadRejectsInfinities(t *testing.T) {
	f := New()
	_ = f.AddDim("x", 1)
	_ = f.AddVar("bad", []string{"x"}, nil, []float64{math.Inf(1)})
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("infinite data accepted")
	}
}

func TestFromStatePartialDepthVariable(t *testing.T) {
	// A variable with 1 < Levels < NZ gets its own level dimension.
	g := grid.New(4, 4, 3, 1, 1, 100)
	l := grid.NewLayout(g, []grid.VarSpec{
		{Name: "T", Levels: 3},
		{Name: "mixed2", Levels: 2},
	})
	state := l.NewState()
	for i := range state {
		state[i] = float64(i)
	}
	f, err := FromState(l, state, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := f.Var("mixed2")
	if !ok {
		t.Fatal("partial-depth variable missing")
	}
	if len(v.Dims) != 3 || v.Dims[0] != "lev_mixed2" {
		t.Fatalf("dims = %v", v.Dims)
	}
	d, ok := f.Dim("lev_mixed2")
	if !ok || d.Len != 2 {
		t.Fatalf("lev_mixed2 dimension: %+v ok=%v", d, ok)
	}
	back, err := ToState(f, l)
	if err != nil {
		t.Fatal(err)
	}
	for i := range state {
		if back[i] != state[i] {
			t.Fatal("partial-depth round trip failed")
		}
	}
}

func TestShape(t *testing.T) {
	f := sampleFile(t)
	v, _ := f.Var("T")
	shape := f.Shape(v)
	if len(shape) != 2 || shape[0] != 3 || shape[1] != 4 {
		t.Fatalf("Shape = %v", shape)
	}
}

func TestFromStateDimMismatch(t *testing.T) {
	g := grid.New(4, 4, 2, 1, 1, 100)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 2}})
	if _, err := FromState(l, []float64{1, 2}, nil); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestToStateWrongSizeVariable(t *testing.T) {
	g := grid.New(4, 4, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "eta", Levels: 1}})
	f := New()
	_ = f.AddDim("x", 2)
	_ = f.AddVar("eta", []string{"x"}, nil, []float64{1, 2})
	if _, err := ToState(f, l); err == nil {
		t.Fatal("wrong-size variable accepted")
	}
}
