// Package ncdf is a minimal self-describing gridded-array file format —
// the stdlib stand-in for NetCDF, which the paper's infrastructure uses
// for all model inputs and outputs ("the shared input files can be read
// remotely from OpenDAP servers ... using the NetCDF-OpenDAP library").
//
// A File holds named dimensions, attributed variables over those
// dimensions, and float64 data. The binary encoding is checksummed, and
// variables support strided hyperslab subsetting — the operation the
// OpenDAP constraint system (internal/opendap) exposes over HTTP.
package ncdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"sort"
)

const magic = "NCDFGO1\n"

var crcTable = crc64.MakeTable(crc64.ECMA)

// Dimension is a named axis length.
type Dimension struct {
	Name string
	Len  int
}

// Variable is a float64 array over named dimensions with attributes.
type Variable struct {
	Name  string
	Dims  []string
	Attrs map[string]string
	Data  []float64
}

// File is a collection of dimensions and variables plus global attributes.
type File struct {
	Dims  []Dimension
	Vars  []Variable
	Attrs map[string]string
}

// New returns an empty file.
func New() *File {
	return &File{Attrs: make(map[string]string)}
}

// AddDim registers a dimension; duplicate names or non-positive lengths
// are rejected.
func (f *File) AddDim(name string, length int) error {
	if length <= 0 {
		return fmt.Errorf("ncdf: dimension %q has non-positive length %d", name, length)
	}
	for _, d := range f.Dims {
		if d.Name == name {
			return fmt.Errorf("ncdf: duplicate dimension %q", name)
		}
	}
	f.Dims = append(f.Dims, Dimension{Name: name, Len: length})
	return nil
}

// Dim returns the named dimension.
func (f *File) Dim(name string) (Dimension, bool) {
	for _, d := range f.Dims {
		if d.Name == name {
			return d, true
		}
	}
	return Dimension{}, false
}

// AddVar registers a variable; its data length must equal the product of
// its dimension lengths, and all dimensions must exist.
func (f *File) AddVar(name string, dims []string, attrs map[string]string, data []float64) error {
	for _, v := range f.Vars {
		if v.Name == name {
			return fmt.Errorf("ncdf: duplicate variable %q", name)
		}
	}
	want := 1
	for _, dn := range dims {
		d, ok := f.Dim(dn)
		if !ok {
			return fmt.Errorf("ncdf: variable %q uses unknown dimension %q", name, dn)
		}
		want *= d.Len
	}
	if len(data) != want {
		return fmt.Errorf("ncdf: variable %q has %d values, dimensions imply %d", name, len(data), want)
	}
	if attrs == nil {
		attrs = map[string]string{}
	}
	f.Vars = append(f.Vars, Variable{Name: name, Dims: dims, Attrs: attrs, Data: data})
	return nil
}

// Var returns the named variable.
func (f *File) Var(name string) (*Variable, bool) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], true
		}
	}
	return nil, false
}

// Shape returns the variable's dimension lengths, resolved against f.
func (f *File) Shape(v *Variable) []int {
	shape := make([]int, len(v.Dims))
	for i, dn := range v.Dims {
		d, _ := f.Dim(dn)
		shape[i] = d.Len
	}
	return shape
}

// HyperSlab extracts the strided sub-array start[i] : start[i]+count[i]
// along every axis — the DAP array constraint. Stride is 1 (extend with
// a stride slice if ever needed).
func (f *File) HyperSlab(v *Variable, start, count []int) ([]float64, error) {
	shape := f.Shape(v)
	if len(start) != len(shape) || len(count) != len(shape) {
		return nil, fmt.Errorf("ncdf: slab rank %d/%d, variable rank %d", len(start), len(count), len(shape))
	}
	outLen := 1
	for i := range shape {
		if start[i] < 0 || count[i] <= 0 || start[i]+count[i] > shape[i] {
			return nil, fmt.Errorf("ncdf: slab [%d,+%d) outside axis %d of length %d", start[i], count[i], i, shape[i])
		}
		outLen *= count[i]
	}
	// Row-major strides.
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	out := make([]float64, 0, outLen)
	idx := make([]int, len(shape))
	for {
		off := 0
		for i := range idx {
			off += (start[i] + idx[i]) * strides[i]
		}
		out = append(out, v.Data[off])
		// Odometer increment.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < count[k] {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return out, nil
}

// DDS renders a dataset descriptor (the OpenDAP "DDS" analog): a stable,
// human-readable structure listing.
func (f *File) DDS(name string) string {
	out := fmt.Sprintf("Dataset {\n")
	for _, v := range f.Vars {
		out += fmt.Sprintf("  Float64 %s", v.Name)
		for _, dn := range v.Dims {
			d, _ := f.Dim(dn)
			out += fmt.Sprintf("[%s = %d]", dn, d.Len)
		}
		out += ";\n"
	}
	out += fmt.Sprintf("} %s;\n", name)
	return out
}

// --- binary encoding --------------------------------------------------------

// Write serializes the file with a trailing checksum.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	h := crc64.New(crcTable)
	mw := io.MultiWriter(bw, h)

	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(mw, binary.LittleEndian, int64(len(s))); err != nil {
			return err
		}
		_, err := mw.Write([]byte(s))
		return err
	}
	writeAttrs := func(attrs map[string]string) error {
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if err := binary.Write(mw, binary.LittleEndian, int64(len(keys))); err != nil {
			return err
		}
		for _, k := range keys {
			if err := writeStr(k); err != nil {
				return err
			}
			if err := writeStr(attrs[k]); err != nil {
				return err
			}
		}
		return nil
	}

	if err := writeAttrs(f.Attrs); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, int64(len(f.Dims))); err != nil {
		return err
	}
	for _, d := range f.Dims {
		if err := writeStr(d.Name); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, int64(d.Len)); err != nil {
			return err
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, int64(len(f.Vars))); err != nil {
		return err
	}
	for _, v := range f.Vars {
		if err := writeStr(v.Name); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, int64(len(v.Dims))); err != nil {
			return err
		}
		for _, dn := range v.Dims {
			if err := writeStr(dn); err != nil {
				return err
			}
		}
		if err := writeAttrs(v.Attrs); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, int64(len(v.Data))); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, v.Data); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses a serialized file, verifying the checksum.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	h := crc64.New(crcTable)
	tr := io.TeeReader(br, h)

	mg := make([]byte, len(magic))
	if _, err := io.ReadFull(tr, mg); err != nil {
		return nil, fmt.Errorf("ncdf: %w", err)
	}
	if string(mg) != magic {
		return nil, fmt.Errorf("ncdf: bad magic %q", mg)
	}
	readI64 := func() (int64, error) {
		var v int64
		err := binary.Read(tr, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readI64()
		if err != nil {
			return "", err
		}
		if n < 0 || n > 1<<20 {
			return "", fmt.Errorf("ncdf: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(tr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	readAttrs := func() (map[string]string, error) {
		n, err := readI64()
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<16 {
			return nil, fmt.Errorf("ncdf: implausible attribute count %d", n)
		}
		attrs := make(map[string]string, n)
		for i := int64(0); i < n; i++ {
			k, err := readStr()
			if err != nil {
				return nil, err
			}
			v, err := readStr()
			if err != nil {
				return nil, err
			}
			attrs[k] = v
		}
		return attrs, nil
	}

	f := New()
	var err error
	if f.Attrs, err = readAttrs(); err != nil {
		return nil, fmt.Errorf("ncdf: %w", err)
	}
	nDims, err := readI64()
	if err != nil {
		return nil, fmt.Errorf("ncdf: %w", err)
	}
	if nDims < 0 || nDims > 1<<16 {
		return nil, fmt.Errorf("ncdf: implausible dimension count %d", nDims)
	}
	for i := int64(0); i < nDims; i++ {
		name, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		l, err := readI64()
		if err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		if err := f.AddDim(name, int(l)); err != nil {
			return nil, err
		}
	}
	nVars, err := readI64()
	if err != nil {
		return nil, fmt.Errorf("ncdf: %w", err)
	}
	if nVars < 0 || nVars > 1<<16 {
		return nil, fmt.Errorf("ncdf: implausible variable count %d", nVars)
	}
	for i := int64(0); i < nVars; i++ {
		name, err := readStr()
		if err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		nd, err := readI64()
		if err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		if nd < 0 || nd > 16 {
			return nil, fmt.Errorf("ncdf: implausible rank %d", nd)
		}
		dims := make([]string, nd)
		for j := range dims {
			if dims[j], err = readStr(); err != nil {
				return nil, fmt.Errorf("ncdf: %w", err)
			}
		}
		attrs, err := readAttrs()
		if err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		nData, err := readI64()
		if err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		if nData < 0 || nData > 1<<32 {
			return nil, fmt.Errorf("ncdf: implausible data length %d", nData)
		}
		data := make([]float64, nData)
		if err := binary.Read(tr, binary.LittleEndian, data); err != nil {
			return nil, fmt.Errorf("ncdf: %w", err)
		}
		if err := f.AddVar(name, dims, attrs, data); err != nil {
			return nil, err
		}
	}
	want := h.Sum64()
	var sum uint64
	if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("ncdf: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("ncdf: checksum mismatch")
	}
	for _, v := range f.Vars {
		for _, x := range v.Data {
			if math.IsInf(x, 0) {
				// NaN is legal (masked cells); infinities are not.
				return nil, fmt.Errorf("ncdf: variable %q contains infinities", v.Name)
			}
		}
	}
	return f, nil
}
