package workflow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"esse/internal/core"
	"esse/internal/covstore"
	"esse/internal/linalg"
	"esse/internal/rng"
	"esse/internal/trace"
)

// toySubspace builds a fixed orthonormal rank-p "true" error subspace.
func toySubspace(seed uint64, dim, p int) *core.Subspace {
	s := rng.New(seed)
	a := linalg.NewDense(dim, p)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sigma := make([]float64, p)
	for i := range sigma {
		sigma[i] = float64(p - i)
	}
	return &core.Subspace{Modes: f.Q, Sigma: sigma}
}

// toyRunner returns a MemberRunner drawing members from a fixed true
// subspace, deterministically keyed by the member index. delay simulates
// forecast compute time; failEvery>0 makes every failEvery-th index fail
// permanently; failOnce makes first attempts fail but retries succeed.
func toyRunner(truth *core.Subspace, seed uint64, delay time.Duration, failEvery int, failOnce bool) MemberRunner {
	master := rng.New(seed)
	attempts := make(map[int]int)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	return func(ctx context.Context, index int) ([]float64, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if failEvery > 0 && index%failEvery == 0 {
			return nil, fmt.Errorf("injected failure for member %d", index)
		}
		if failOnce {
			<-mu
			attempts[index]++
			first := attempts[index] == 1
			mu <- struct{}{}
			if first {
				return nil, fmt.Errorf("transient failure for member %d", index)
			}
		}
		st := master.Split(uint64(index))
		return truth.Perturb(nil, st, 0.01), nil
	}
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.InitialSize = 12
	cfg.MaxSize = 48
	cfg.SVDBatch = 6
	cfg.Workers = 4
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.90, MaxVarianceChange: 0.5}
	return cfg
}

func TestRunParallelProducesValidSubspace(t *testing.T) {
	truth := toySubspace(1, 60, 3)
	res, err := RunParallel(context.Background(), quickConfig(), make([]float64, 60),
		toyRunner(truth, 2, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Subspace == nil || res.Subspace.Rank() < 1 {
		t.Fatal("no subspace produced")
	}
	if err := res.Subspace.Check(1e-7); err != nil {
		t.Fatal(err)
	}
	if res.MembersUsed < 2 {
		t.Fatalf("MembersUsed = %d", res.MembersUsed)
	}
	if res.Rho < 0 || res.Rho > 1+1e-9 {
		t.Fatalf("rho = %v outside [0,1]", res.Rho)
	}
	if len(res.Mean) != 60 || len(res.Central) != 60 {
		t.Fatal("mean/central missing")
	}
}

func TestRunParallelRecoversTrueSubspace(t *testing.T) {
	// With enough members, the estimated dominant subspace must capture
	// most of the true variance.
	truth := toySubspace(3, 80, 3)
	cfg := quickConfig()
	cfg.InitialSize = 60
	cfg.MaxSize = 60
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2, MaxVarianceChange: 0} // never converge early
	res, err := RunParallel(context.Background(), cfg, make([]float64, 80),
		toyRunner(truth, 4, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	est := res.Subspace.Truncate(3)
	rho := core.SimilarityCoefficient(est, truth)
	if rho < 0.85 {
		t.Fatalf("estimated subspace captures only %v of true variance", rho)
	}
}

func TestParallelMatchesSerialWhenExhaustive(t *testing.T) {
	// With convergence disabled and no failures, both engines process
	// exactly the same member set (0..MaxSize-1) and must produce the
	// same subspace regardless of completion order.
	truth := toySubspace(5, 40, 2)
	cfg := quickConfig()
	cfg.InitialSize = 20
	cfg.MaxSize = 20
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	runner := toyRunner(truth, 6, 0, 0, false)
	par, err := RunParallel(context.Background(), cfg, make([]float64, 40), runner)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunSerial(context.Background(), cfg, make([]float64, 40), runner)
	if err != nil {
		t.Fatal(err)
	}
	if par.MembersUsed != ser.MembersUsed {
		t.Fatalf("member counts differ: %d vs %d", par.MembersUsed, ser.MembersUsed)
	}
	if len(par.Subspace.Sigma) != len(ser.Subspace.Sigma) {
		t.Fatalf("ranks differ: %d vs %d", par.Subspace.Rank(), ser.Subspace.Rank())
	}
	for i := range par.Subspace.Sigma {
		if math.Abs(par.Subspace.Sigma[i]-ser.Subspace.Sigma[i]) > 1e-8 {
			t.Fatalf("sigma[%d] differs: %v vs %v", i, par.Subspace.Sigma[i], ser.Subspace.Sigma[i])
		}
	}
	if rho := core.SimilarityCoefficient(par.Subspace, ser.Subspace); rho < 1-1e-8 {
		t.Fatalf("parallel and serial subspaces differ: rho = %v", rho)
	}
	for i := range par.Mean {
		if math.Abs(par.Mean[i]-ser.Mean[i]) > 1e-12 {
			t.Fatal("ensemble means differ")
		}
	}
}

func TestConvergenceCancelsRemainingMembers(t *testing.T) {
	truth := toySubspace(7, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 200
	cfg.MaxSize = 200
	cfg.SVDBatch = 10
	cfg.Workers = 4
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.2, MaxVarianceChange: 0.9}
	res, err := RunParallel(context.Background(), cfg, make([]float64, 30),
		toyRunner(truth, 8, 2*time.Millisecond, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loose criterion did not converge")
	}
	if res.MembersUsed >= 200 {
		t.Fatal("convergence did not stop the ensemble early")
	}
}

func TestDrainAndUsePolicy(t *testing.T) {
	truth := toySubspace(9, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 100
	cfg.MaxSize = 100
	cfg.SVDBatch = 10
	cfg.Policy = DrainAndUse
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.2, MaxVarianceChange: 0.9}
	res, err := RunParallel(context.Background(), cfg, make([]float64, 30),
		toyRunner(truth, 10, time.Millisecond, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Drain policy never cancels running members.
	if res.MembersCancelled != 0 {
		t.Fatalf("drain policy cancelled %d members", res.MembersCancelled)
	}
}

func TestFailureTolerance(t *testing.T) {
	truth := toySubspace(11, 30, 2)
	cfg := quickConfig()
	cfg.Retries = 0
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	res, err := RunParallel(context.Background(), cfg, make([]float64, 30),
		toyRunner(truth, 12, 0, 5, false)) // every 5th member fails
	if err != nil {
		t.Fatal(err)
	}
	if res.MembersFailed == 0 {
		t.Fatal("no failures recorded despite injection")
	}
	if res.Subspace == nil {
		t.Fatal("failures must not prevent a result")
	}
	if res.MembersUsed+res.MembersFailed < cfg.MaxSize {
		t.Fatalf("accounted members %d < target %d",
			res.MembersUsed+res.MembersFailed, cfg.MaxSize)
	}
}

func TestRetriesRecoverTransientFailures(t *testing.T) {
	truth := toySubspace(13, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 8
	cfg.MaxSize = 8
	cfg.Retries = 2
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	res, err := RunParallel(context.Background(), cfg, make([]float64, 30),
		toyRunner(truth, 14, 0, 0, true)) // first attempt always fails
	if err != nil {
		t.Fatal(err)
	}
	if res.MembersFailed != 0 {
		t.Fatalf("%d members failed despite retries", res.MembersFailed)
	}
	if res.MembersUsed != 8 {
		t.Fatalf("MembersUsed = %d, want 8", res.MembersUsed)
	}
}

func TestDeadlineIgnoresLateMembers(t *testing.T) {
	truth := toySubspace(15, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 400
	cfg.MaxSize = 400
	cfg.SVDBatch = 2
	cfg.Workers = 4
	cfg.Deadline = 60 * time.Millisecond
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	res, err := RunParallel(context.Background(), cfg, make([]float64, 30),
		toyRunner(truth, 16, 5*time.Millisecond, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.MembersUsed >= 400 {
		t.Fatal("deadline did not cut the ensemble short")
	}
	// Members still in flight at the deadline are either cancelled or —
	// if their select races the timer — delivered; both are legitimate
	// ("runs that have not finished by the forecast deadline can be
	// safely ignored"). What must hold: nothing beyond the in-flight
	// window was processed, and a usable subspace came out.
	if res.MembersUsed+res.MembersCancelled > 400 {
		t.Fatalf("accounting overflow: used %d + cancelled %d",
			res.MembersUsed, res.MembersCancelled)
	}
	if res.Subspace == nil {
		t.Fatal("partial ensemble must still yield a subspace")
	}
	if res.Elapsed > 10*cfg.Deadline {
		t.Fatalf("run overshot the deadline grossly: %v", res.Elapsed)
	}
}

func TestPoolGrowth(t *testing.T) {
	truth := toySubspace(17, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 8
	cfg.MaxSize = 32
	cfg.GrowthFactor = 2
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2} // force growth to the cap
	res, err := RunParallel(context.Background(), cfg, make([]float64, 30),
		toyRunner(truth, 18, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 16, 32}
	if len(res.PoolSizes) != len(want) {
		t.Fatalf("PoolSizes = %v, want %v", res.PoolSizes, want)
	}
	for i := range want {
		if res.PoolSizes[i] != want[i] {
			t.Fatalf("PoolSizes = %v, want %v", res.PoolSizes, want)
		}
	}
	if res.MembersUsed != 32 {
		t.Fatalf("MembersUsed = %d, want 32", res.MembersUsed)
	}
}

func TestGrowTarget(t *testing.T) {
	cfg := Config{GrowthFactor: 1.5, MaxSize: 100}
	if g := growTarget(10, &cfg); g != 15 {
		t.Fatalf("growTarget(10) = %d", g)
	}
	if g := growTarget(99, &cfg); g != 100 {
		t.Fatalf("growTarget(99) = %d, want cap", g)
	}
	cfg.GrowthFactor = 1
	if g := growTarget(10, &cfg); g != 11 {
		t.Fatalf("growTarget must always make progress, got %d", g)
	}
}

func TestTripleFileStoreIntegration(t *testing.T) {
	truth := toySubspace(19, 40, 2)
	store, err := covstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Store = store
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	cfg.InitialSize = 16
	cfg.MaxSize = 16
	res, err := RunParallel(context.Background(), cfg, make([]float64, 40),
		toyRunner(truth, 20, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if store.Writes() == 0 {
		t.Fatal("diff stage never published through the store")
	}
	// Same run without the store must produce the same subspace.
	cfg.Store = nil
	res2, err := RunParallel(context.Background(), cfg, make([]float64, 40),
		toyRunner(truth, 20, 0, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if rho := core.SimilarityCoefficient(res.Subspace, res2.Subspace); rho < 1-1e-8 {
		t.Fatalf("store round trip changed the subspace: rho = %v", rho)
	}
}

func TestParallelTimelineOverlaps(t *testing.T) {
	truth := toySubspace(21, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 16
	cfg.MaxSize = 16
	cfg.Workers = 8
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	runner := toyRunner(truth, 22, 3*time.Millisecond, 0, false)
	par, err := RunParallel(context.Background(), cfg, make([]float64, 30), runner)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Timeline.Overlap(trace.SimulationTime) {
		t.Fatal("parallel run shows no overlapping member executions")
	}
	ser, err := RunSerial(context.Background(), cfg, make([]float64, 30), runner)
	if err != nil {
		t.Fatal(err)
	}
	if ser.Timeline.Overlap(trace.SimulationTime) {
		t.Fatal("serial run shows overlapping member executions")
	}
}

func TestParallelFasterThanSerial(t *testing.T) {
	// The headline claim of the MTC transformation: with W workers and
	// per-member cost d, wall-clock drops ~W-fold.
	truth := toySubspace(23, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 24
	cfg.MaxSize = 24
	cfg.Workers = 8
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	runner := toyRunner(truth, 24, 4*time.Millisecond, 0, false)
	par, err := RunParallel(context.Background(), cfg, make([]float64, 30), runner)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunSerial(context.Background(), cfg, make([]float64, 30), runner)
	if err != nil {
		t.Fatal(err)
	}
	if par.Elapsed >= ser.Elapsed {
		t.Fatalf("parallel (%v) not faster than serial (%v)", par.Elapsed, ser.Elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	base := quickConfig()
	cases := []func(*Config){
		func(c *Config) { c.InitialSize = 1 },
		func(c *Config) { c.MaxSize = c.InitialSize - 1 },
		func(c *Config) { c.GrowthFactor = 0.5 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.SVDBatch = 0 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := RunParallel(context.Background(), cfg, make([]float64, 10), nil); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
		if _, err := RunSerial(context.Background(), cfg, make([]float64, 10), nil); err == nil {
			t.Fatalf("case %d: invalid config accepted by serial", i)
		}
	}
}

func TestAllMembersFailing(t *testing.T) {
	cfg := quickConfig()
	cfg.Retries = 0
	cfg.InitialSize = 4
	cfg.MaxSize = 4
	runner := func(ctx context.Context, index int) ([]float64, error) {
		return nil, errors.New("hardware gremlin")
	}
	if _, err := RunParallel(context.Background(), cfg, make([]float64, 10), runner); err == nil {
		t.Fatal("total failure must surface an error")
	}
	if _, err := RunSerial(context.Background(), cfg, make([]float64, 10), runner); err == nil {
		t.Fatal("total failure must surface an error in serial mode")
	}
}

func TestExternalCancellation(t *testing.T) {
	truth := toySubspace(25, 30, 2)
	cfg := quickConfig()
	cfg.InitialSize = 100
	cfg.MaxSize = 100
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := RunParallel(ctx, cfg, make([]float64, 30),
		toyRunner(truth, 26, 2*time.Millisecond, 0, false))
	// Either a partial result or a clean error is acceptable; a hang is not.
	if err == nil && res.MembersUsed >= 100 {
		t.Fatal("cancellation had no effect")
	}
}

func TestSerialGrowthRestartsFromN(t *testing.T) {
	// The Fig. 3 loop "restarts for the ensemble members N+1 to N2":
	// indices must not be recomputed.
	truth := toySubspace(27, 30, 2)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	seen := map[int]int{}
	inner := toyRunner(truth, 28, 0, 0, false)
	runner := func(ctx context.Context, index int) ([]float64, error) {
		<-mu
		seen[index]++
		mu <- struct{}{}
		return inner(ctx, index)
	}
	cfg := quickConfig()
	cfg.InitialSize = 8
	cfg.MaxSize = 32
	cfg.GrowthFactor = 2
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	if _, err := RunSerial(context.Background(), cfg, make([]float64, 30), runner); err != nil {
		t.Fatal(err)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("member %d computed %d times", idx, n)
		}
	}
	if len(seen) != 32 {
		t.Fatalf("computed %d distinct members, want 32", len(seen))
	}
}

func TestResultAnomalyBookkeeping(t *testing.T) {
	// Result.Anomalies columns must align with Result.MemberIndices and
	// reproduce member − central for every used member.
	truth := toySubspace(31, 25, 2)
	cfg := quickConfig()
	cfg.InitialSize = 10
	cfg.MaxSize = 10
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	runner := toyRunner(truth, 32, 0, 0, false)
	central := make([]float64, 25)
	res, err := RunParallel(context.Background(), cfg, central, runner)
	if err != nil {
		t.Fatal(err)
	}
	if res.Anomalies == nil || res.Anomalies.Cols != res.MembersUsed {
		t.Fatalf("anomaly matrix missing or wrong width")
	}
	if len(res.MemberIndices) != res.MembersUsed {
		t.Fatalf("%d indices for %d members", len(res.MemberIndices), res.MembersUsed)
	}
	for col, idx := range res.MemberIndices {
		want, err := runner(context.Background(), idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			if math.Abs(res.Anomalies.At(i, col)-want[i]) > 1e-12 {
				t.Fatalf("anomaly column %d does not match member %d", col, idx)
			}
		}
	}
}

func TestSerialDeadlineCutsShort(t *testing.T) {
	truth := toySubspace(41, 20, 2)
	cfg := quickConfig()
	cfg.InitialSize = 200
	cfg.MaxSize = 200
	cfg.Deadline = 40 * time.Millisecond
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	res, err := RunSerial(context.Background(), cfg, make([]float64, 20),
		toyRunner(truth, 42, 2*time.Millisecond, 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.MembersUsed >= 200 {
		t.Fatal("serial deadline did not cut the batch short")
	}
	if res.Subspace == nil {
		t.Fatal("partial serial run must still yield a subspace")
	}
}

func TestSerialExternalCancel(t *testing.T) {
	truth := toySubspace(43, 20, 2)
	cfg := quickConfig()
	cfg.InitialSize = 500
	cfg.MaxSize = 500
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := RunSerial(ctx, cfg, make([]float64, 20),
		toyRunner(truth, 44, time.Millisecond, 0, false))
	if err == nil && res.MembersUsed >= 500 {
		t.Fatal("cancellation had no effect on the serial engine")
	}
}

func TestSerialFailureTolerance(t *testing.T) {
	truth := toySubspace(45, 20, 2)
	cfg := quickConfig()
	cfg.Retries = 0
	cfg.InitialSize = 15
	cfg.MaxSize = 15
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	res, err := RunSerial(context.Background(), cfg, make([]float64, 20),
		toyRunner(truth, 46, 0, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.MembersFailed == 0 || res.Subspace == nil {
		t.Fatalf("serial failure tolerance broken: failed=%d", res.MembersFailed)
	}
}
