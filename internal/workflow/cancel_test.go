package workflow

import (
	"context"
	"runtime"
	"testing"
	"time"

	"esse/internal/core"
	"esse/internal/covstore"
	"esse/internal/telemetry"
)

// TestCancelMidBatchCleanShutdown cancels the engine's context in the
// middle of a batch — after the first SVD round, with half the pool
// still blocked in the propagator — and asserts the shutdown contract
// the ctxflow analyzer exists to protect: RunParallel returns (with the
// partial subspace), no worker or dispatcher goroutine leaks, every
// member that started ends its lifecycle in a terminal phase with at
// least one cancelled, and the covstore jobdir is left restartable (the
// published safe file is readable and a fresh run can pick the store
// back up). Run under -race this also sweeps the shutdown interleavings
// dynamically.
func TestCancelMidBatchCleanShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	truth := toySubspace(7, 40, 3)
	tel := telemetry.New()
	store, err := covstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Instrument(tel)

	cfg := quickConfig()
	cfg.InitialSize = 12
	cfg.MaxSize = 12
	cfg.SVDBatch = 4
	cfg.Workers = 4
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2, MaxVarianceChange: 0} // never converge
	cfg.Telemetry = tel
	cfg.Store = store

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fast := toyRunner(truth, 8, 0, 0, false)
	runner := func(c context.Context, idx int) ([]float64, error) {
		if idx < 6 {
			return fast(c, idx)
		}
		// The back half of the pool blocks until cancellation, so the
		// cancel always lands mid-batch with workers in flight.
		<-c.Done()
		return nil, c.Err()
	}
	// OnProgress runs on the coordinator after each completion; by the
	// time Completed reaches 4 the first SVD round (SVDBatch=4) has run
	// and its snapshot is published.
	cancelled := false
	cfg.OnProgress = func(p Progress) {
		if !cancelled && p.Completed >= 4 {
			cancelled = true
			cancel()
		}
	}

	res, err := RunParallel(ctx, cfg, make([]float64, 40), runner)
	if err != nil {
		t.Fatalf("cancelled run must return the partial result, got error: %v", err)
	}
	if res.Converged {
		t.Fatal("run must not report convergence it never reached")
	}
	if res.MembersCancelled == 0 {
		t.Fatal("expected cancelled members, got none")
	}
	if res.Subspace == nil || res.Subspace.Rank() < 1 {
		t.Fatal("partial subspace missing")
	}

	// No leaked goroutines: the dispatcher, workers and telemetry spans
	// must all have unwound. Allow a little slack for runtime helpers.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before run, %d after shutdown", before, n)
	}

	// Every member that reached Running ends in a terminal phase, and at
	// least one ends cancelled.
	last := map[int]telemetry.Phase{}
	started := map[int]bool{}
	for _, e := range tel.Events().Snapshot(0) {
		if e.Task != "member" {
			continue
		}
		last[e.Index] = e.Phase
		if e.Phase == telemetry.PhaseRunning {
			started[e.Index] = true
		}
	}
	sawCancelled := false
	for idx := range started {
		switch last[idx] {
		case telemetry.PhaseDone, telemetry.PhaseFailed:
		case telemetry.PhaseCancelled:
			sawCancelled = true
		default:
			t.Errorf("member %d started but its lifecycle ends in phase %v, not a terminal one", idx, last[idx])
		}
	}
	if !sawCancelled {
		t.Fatal("no member lifecycle ends in cancelled")
	}

	// The jobdir is restartable: the safe file holds a readable snapshot
	// and a fresh run can reuse the same store.
	anoms, indices, ver, err := store.ReadSafe()
	if err != nil {
		t.Fatalf("safe file unreadable after cancellation: %v", err)
	}
	if ver < 1 || anoms == nil || len(indices) == 0 {
		t.Fatalf("safe snapshot incomplete: version=%d indices=%d", ver, len(indices))
	}
	res2, err := RunParallel(context.Background(), cfg, make([]float64, 40),
		toyRunner(truth, 9, 0, 0, false))
	if err != nil {
		t.Fatalf("restarted run on the same store failed: %v", err)
	}
	if res2.Subspace == nil {
		t.Fatal("restarted run produced no subspace")
	}
	if store.Version() <= ver {
		t.Fatalf("restarted run did not advance the store: version still %d", store.Version())
	}
}
