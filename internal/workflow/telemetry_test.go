package workflow

import (
	"context"
	"strings"
	"testing"

	"esse/internal/telemetry"
)

// TestRunParallelTelemetry runs the engine with telemetry enabled and
// checks the full observability surface: lifecycle events in order,
// outcome counters consistent with the result, spans recorded, and a
// parseable /metrics exposition.
func TestRunParallelTelemetry(t *testing.T) {
	tel := telemetry.New()
	cfg := quickConfig()
	cfg.Telemetry = tel
	cfg.Retries = 2

	truth := toySubspace(1, 60, 3)
	res, err := RunParallel(context.Background(), cfg, make([]float64, 60),
		toyRunner(truth, 2, 0, 0, true)) // failOnce: every member retries once
	if err != nil {
		t.Fatal(err)
	}

	// Lifecycle events: every member walks queued → dispatched →
	// running before its terminal phase, and the retry phase shows up.
	events := tel.Events().Snapshot(0)
	if len(events) == 0 {
		t.Fatal("no lifecycle events emitted")
	}
	perMember := map[int][]telemetry.Phase{}
	retried := 0
	for _, e := range events {
		if e.Task != "member" {
			t.Fatalf("unexpected task %q", e.Task)
		}
		if e.Phase == telemetry.PhaseRetried {
			retried++
			continue // retry ordinal interleaves; order-checked phases exclude it
		}
		perMember[e.Index] = append(perMember[e.Index], e.Phase)
	}
	if retried == 0 {
		t.Fatal("failOnce runner produced no PhaseRetried events")
	}
	for idx, phases := range perMember {
		if len(phases) < 4 {
			t.Fatalf("member %d has %d phases: %v", idx, len(phases), phases)
		}
		want := []telemetry.Phase{telemetry.PhaseQueued, telemetry.PhaseDispatched, telemetry.PhaseRunning}
		for i, w := range want {
			if phases[i] != w {
				t.Fatalf("member %d phase %d = %v, want %v (%v)", idx, i, phases[i], w, phases)
			}
		}
		last := phases[len(phases)-1]
		if last != telemetry.PhaseDone && last != telemetry.PhaseFailed && last != telemetry.PhaseCancelled {
			t.Fatalf("member %d ends in %v", idx, last)
		}
	}

	// Counters agree with the result and the event stream.
	reg := tel.Registry()
	done := reg.Counter("esse_workflow_members_total", "Ensemble members by final outcome.", "outcome", "done")
	if got := done.Value(); got != uint64(res.MembersUsed) {
		t.Fatalf("done counter = %d, MembersUsed = %d", got, res.MembersUsed)
	}
	if got := reg.Counter("esse_workflow_retries_total", "Member attempts that failed and were retried.").Value(); got != uint64(retried) {
		t.Fatalf("retries counter = %d, retried events = %d", got, retried)
	}
	if got := reg.Counter("esse_workflow_svd_rounds_total", "SVD/convergence stage executions.").Value(); got != uint64(res.SVDRounds) {
		t.Fatalf("svd counter = %d, SVDRounds = %d", got, res.SVDRounds)
	}
	h := reg.Histogram("esse_workflow_member_seconds", "Wall-clock duration of one ensemble member forecast.", nil)
	if h.Count() != uint64(res.MembersUsed) {
		t.Fatalf("member histogram count = %d, want %d", h.Count(), res.MembersUsed)
	}

	// Spans: one per completed member plus one per SVD round.
	if got := tel.Tracer().Len(); got < res.MembersUsed+res.SVDRounds {
		t.Fatalf("spans = %d, want >= %d members + %d SVD rounds", got, res.MembersUsed, res.SVDRounds)
	}

	// The whole run scrapes into a parseable exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := telemetry.ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("unparseable exposition: %v\n%s", err, sb.String())
	}
	if v, ok := exp.Value("esse_workflow_target_members"); !ok || v < float64(cfg.InitialSize) {
		t.Fatalf("target gauge = %v, %v", v, ok)
	}
}

// TestRunParallelNilTelemetry pins that the disabled path changes
// nothing: the engine must produce the identical subspace with and
// without telemetry attached.
func TestRunParallelNilTelemetry(t *testing.T) {
	truth := toySubspace(1, 60, 3)
	run := func(tel *telemetry.Telemetry) []float64 {
		cfg := quickConfig()
		cfg.Telemetry = tel
		res, err := RunParallel(context.Background(), cfg, make([]float64, 60),
			toyRunner(truth, 2, 0, 0, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Subspace.Sigma
	}
	off := run(nil)
	on := run(telemetry.New())
	if len(off) != len(on) {
		t.Fatalf("rank differs: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("sigma[%d] differs with telemetry on: %v vs %v", i, off[i], on[i])
		}
	}
}
