// Package workflow implements the ESSE many-task workflow of the paper's
// Section 4: the serial reference implementation (Fig. 3) and the
// parallel MTC implementation (Fig. 4) with a pool of concurrent
// perturb/forecast tasks, a continuously running diff stage, a
// continuously running SVD + convergence stage, adaptive ensemble
// growth, convergence-driven cancellation, deadline tolerance and
// failure tolerance.
//
// The five ESSE-vs-high-throughput differences the paper enumerates map
// to engine features as follows:
//
//  1. hard forecast deadline        → Config.Deadline, late members ignored
//  2. dynamically adjusted size     → Config.GrowthFactor / MaxSize
//  3. individual members ignorable  → failure counting, no global abort
//  4. full member datasets required → members return complete state vectors
//  5. members may be parallel codes → MemberRunner is free to fan out
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"esse/internal/core"
	"esse/internal/covstore"
	"esse/internal/linalg"
	"esse/internal/telemetry"
	"esse/internal/trace"
)

// MemberRunner computes one ensemble member: it perturbs the initial
// conditions for the given member index and integrates the forecast,
// returning the packed forecast state. Implementations must be safe for
// concurrent invocation and should derive all randomness from the index
// so results are independent of scheduling order.
type MemberRunner func(ctx context.Context, index int) ([]float64, error)

// DrainPolicy selects what happens to in-flight members once the error
// subspace has converged (Section 4.1 discusses both variants).
type DrainPolicy int

const (
	// CancelImmediately cancels queued and running members and uses the
	// subspace from the converging SVD.
	CancelImmediately DrainPolicy = iota
	// DrainAndUse stops launching new members but lets running ones
	// finish, then performs a final SVD over everything available.
	DrainAndUse
)

// Config parameterizes an ESSE workflow run.
type Config struct {
	// InitialSize is N, the first ensemble size attempted.
	InitialSize int
	// MaxSize is Nmax, the ensemble size cap.
	MaxSize int
	// GrowthFactor scales the pool when convergence fails (N → ⌈N·g⌉).
	GrowthFactor float64
	// MaxRank caps the error subspace rank (0 = ensemble size).
	MaxRank int
	// SVDBatch runs the SVD stage after every batch of this many newly
	// completed members ("a multiple of a set number of realizations").
	SVDBatch int
	// Criterion is the subspace convergence test.
	Criterion core.ConvergenceCriterion
	// Workers is the number of concurrent forecast tasks (pool width).
	Workers int
	// Deadline bounds the wall-clock time of the whole ensemble (Tmax).
	// Zero means no deadline. Members not finished by the deadline are
	// ignored, per the paper.
	Deadline time.Duration
	// Policy selects the convergence cancellation behaviour.
	Policy DrainPolicy
	// SigmaRelTol drops subspace modes below this fraction of σmax.
	SigmaRelTol float64
	// Retries is how many times a failed member is retried before its
	// index is abandoned (failures are tolerable, not catastrophic).
	Retries int
	// Store, when non-nil, routes anomaly snapshots through the on-disk
	// triple-file protocol: the diff stage publishes and the SVD stage
	// reads back the safe file, exactly as the shell implementation did.
	Store *covstore.Store
	// OnProgress, when non-nil, is invoked from the coordinator after
	// every member completion and SVD round with a progress snapshot —
	// the monitoring hook the shell implementation lacked ("no easy way
	// for the user to monitor the progress of one's jobs", §5.3.1). The
	// callback runs on the coordinator goroutine and must be fast.
	OnProgress func(Progress)
	// Telemetry, when non-nil, receives per-member lifecycle events
	// (queued → dispatched → running → retried → done/failed/cancelled),
	// wall-clock spans for members and SVD rounds, and engine metrics.
	// The nil default makes every instrumentation call a no-op.
	Telemetry *telemetry.Telemetry
}

// Progress is a point-in-time snapshot of a running ensemble.
type Progress struct {
	Completed, Failed, Cancelled int
	Target                       int
	SVDRounds                    int
	Converged                    bool
	Rho                          float64
	Elapsed                      time.Duration
}

// DefaultConfig returns a workable configuration for tests and examples.
func DefaultConfig() Config {
	return Config{
		InitialSize:  16,
		MaxSize:      64,
		GrowthFactor: 1.5,
		MaxRank:      0,
		SVDBatch:     8,
		Criterion:    core.DefaultConvergence(),
		Workers:      4,
		Policy:       CancelImmediately,
		SigmaRelTol:  1e-8,
		Retries:      1,
	}
}

func (c *Config) validate() error {
	if c.InitialSize < 2 {
		return errors.New("workflow: InitialSize must be >= 2")
	}
	if c.MaxSize < c.InitialSize {
		return errors.New("workflow: MaxSize must be >= InitialSize")
	}
	if c.GrowthFactor < 1 {
		return errors.New("workflow: GrowthFactor must be >= 1")
	}
	if c.Workers < 1 {
		return errors.New("workflow: Workers must be >= 1")
	}
	if c.SVDBatch < 1 {
		return errors.New("workflow: SVDBatch must be >= 1")
	}
	return nil
}

// Result summarizes an ESSE ensemble run.
type Result struct {
	// Subspace is the final error subspace estimate.
	Subspace *core.Subspace
	// Mean is the ensemble mean state (central + mean anomaly).
	Mean []float64
	// Central is the unperturbed central forecast.
	Central []float64
	// Converged reports whether the convergence criterion was met.
	Converged bool
	// Rho is the last measured subspace similarity coefficient.
	Rho float64
	// MembersUsed counts members contributing to the final subspace.
	MembersUsed int
	// MembersFailed counts members abandoned after retries.
	MembersFailed int
	// MembersCancelled counts members cancelled by convergence/deadline.
	MembersCancelled int
	// SVDRounds counts SVD/convergence stage executions.
	SVDRounds int
	// PoolSizes records the ensemble size after each growth step,
	// starting with the initial size.
	PoolSizes []int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Timeline carries per-member simulation spans (Fig. 1 material).
	Timeline *trace.Timeline
	// Anomalies is the final member-anomaly matrix (stateDim × used) and
	// MemberIndices its column-to-member bookkeeping — the inputs the
	// ESSE smoother needs (core.SmoothPrevious).
	Anomalies *linalg.Dense
	// MemberIndices records which member produced each anomaly column.
	MemberIndices []int
}

// growTarget computes the next pool size.
func growTarget(cur int, cfg *Config) int {
	next := int(float64(cur)*cfg.GrowthFactor + 0.999999)
	if next <= cur {
		next = cur + 1
	}
	if next > cfg.MaxSize {
		next = cfg.MaxSize
	}
	return next
}

type memberDone struct {
	index      int
	state      []float64
	err        error
	start, end time.Duration
}

// RunParallel executes the parallel (Fig. 4) ESSE workflow: a pool of
// Workers goroutines computes members concurrently; completions stream
// through the diff accumulator; the SVD/convergence stage runs on batch
// boundaries; the pool grows on convergence failure and is cancelled on
// success, deadline expiry, or external context cancellation.
func RunParallel(ctx context.Context, cfg Config, central []float64, runner MemberRunner) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Deadline > 0 {
		var cancelT context.CancelFunc
		runCtx, cancelT = context.WithTimeout(runCtx, cfg.Deadline)
		defer cancelT()
	}

	acc := core.NewAccumulator(central)
	tl := trace.New()

	// Metric registration may allocate, so it happens once up front; the
	// handles below are lock-free (and nil no-ops when telemetry is off).
	tel := cfg.Telemetry
	cMembersDone := tel.Counter("esse_workflow_members_total", "Ensemble members by final outcome.", "outcome", "done")
	cMembersFailed := tel.Counter("esse_workflow_members_total", "Ensemble members by final outcome.", "outcome", "failed")
	cMembersCancelled := tel.Counter("esse_workflow_members_total", "Ensemble members by final outcome.", "outcome", "cancelled")
	cRetries := tel.Counter("esse_workflow_retries_total", "Member attempts that failed and were retried.")
	cSVDRounds := tel.Counter("esse_workflow_svd_rounds_total", "SVD/convergence stage executions.")
	hMemberSec := tel.Histogram("esse_workflow_member_seconds", "Wall-clock duration of one ensemble member forecast.", nil)
	hSVDSec := tel.Histogram("esse_workflow_svd_seconds", "Wall-clock duration of one SVD/convergence round.", nil)
	gTarget := tel.Gauge("esse_workflow_target_members", "Current ensemble size target.")
	gTarget.Set(float64(cfg.InitialSize))

	var target atomic.Int64
	target.Store(int64(cfg.InitialSize))
	var launched atomic.Int64
	targetChanged := make(chan struct{}, 1)
	finished := make(chan struct{})

	jobs := make(chan int)
	results := make(chan memberDone, cfg.Workers*2)

	// Dispatcher: hands out member indices up to the (growing) target.
	go func() {
		defer close(jobs)
		next := 0
		queued := -1
		for {
			t := int(target.Load())
			if next < t {
				if next > queued {
					queued = next
					tel.Emit("member", next, 0, telemetry.PhaseQueued)
				}
				select {
				case jobs <- next:
					next++
					launched.Store(int64(next))
				case <-runCtx.Done():
					return
				case <-finished:
					return
				}
				continue
			}
			select {
			case <-targetChanged:
			case <-runCtx.Done():
				return
			case <-finished:
				return
			}
		}
	}()

	// Worker pool: the MTC element. Each worker perturbs + forecasts.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		lane := int64(w + 1) // trace tid; lane 0 is the coordinator
		go func() {
			defer wg.Done()
			for idx := range jobs {
				t0 := time.Since(start)
				// Dispatched is emitted by the receiving worker, not the
				// dispatcher after its send: both orderings are the same
				// instant on an unbuffered channel, but this one makes
				// queued < dispatched < running a per-member guarantee in
				// the event stream rather than a goroutine race.
				tel.Emit("member", idx, 0, telemetry.PhaseDispatched)
				tel.Emit("member", idx, 0, telemetry.PhaseRunning)
				// The member span carries the worker's lane and rides the
				// context into the runner, so phase spans the runner opens
				// (perturb, forecast) land on the same lane as children.
				mctx, sp := tel.SpanCtx(runCtx, "workflow", "member", int64(idx), lane)
				state, err := runWithRetries(mctx, cfg.Retries, idx, runner, tel, cRetries)
				sp.End()
				results <- memberDone{index: idx, state: state, err: err, start: t0, end: time.Since(start)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Coordinator: the continuous diff + SVD/convergence stages.
	res := &Result{Timeline: tl, PoolSizes: []int{cfg.InitialSize}, Central: acc.Central()}
	var prev, cur *core.Subspace
	lastSVD := 0
	finishedClosed := false
	finish := func() {
		if !finishedClosed {
			finishedClosed = true
			close(finished)
		}
	}

	runSVD := func() error {
		// ctx (not runCtx) on purpose: runCtx is already cancelled when
		// convergence fires, but the final SVD must still parent under
		// the caller's span; SpanCtx uses the context only for lineage.
		svdCtx, sp := tel.SpanCtx(ctx, "workflow", "svd", int64(res.SVDRounds), 0)
		defer sp.End()
		svdStart := time.Now()
		defer func() { hSVDSec.Observe(time.Since(svdStart).Seconds()) }()
		anoms := acc.Anomalies()
		indices := acc.Indices()
		if cfg.Store != nil {
			// Publish through the triple-file protocol and read back the
			// safe file, like the shell implementation's differ/SVD pair.
			if _, err := cfg.Store.WriteSnapshotCtx(svdCtx, anoms, indices); err != nil {
				return fmt.Errorf("workflow: diff publish: %w", err)
			}
			m, _, _, err := cfg.Store.ReadSafeCtx(svdCtx)
			if err != nil {
				return fmt.Errorf("workflow: SVD read: %w", err)
			}
			anoms = m
		}
		if anoms.Cols < 2 {
			return nil
		}
		cur = core.SubspaceFromAnomalies(anoms, cfg.MaxRank, cfg.SigmaRelTol)
		res.SVDRounds++
		cSVDRounds.Inc()
		lastSVD = anoms.Cols
		if prev != nil {
			ok, rho := cfg.Criterion.Converged(prev, cur)
			res.Rho = rho
			if ok {
				res.Converged = true
				switch cfg.Policy {
				case CancelImmediately:
					cancel()
				case DrainAndUse:
					// Stop dispatching beyond what is already launched.
					target.Store(launched.Load())
					gTarget.Set(float64(launched.Load()))
					select {
					case targetChanged <- struct{}{}:
					default:
					}
				}
			}
		}
		prev = cur
		return nil
	}

	notify := func() {
		if cfg.OnProgress == nil {
			return
		}
		cfg.OnProgress(Progress{
			Completed: res.MembersUsed,
			Failed:    res.MembersFailed,
			Cancelled: res.MembersCancelled,
			Target:    int(target.Load()),
			SVDRounds: res.SVDRounds,
			Converged: res.Converged,
			Rho:       res.Rho,
			Elapsed:   time.Since(start),
		})
	}

	var loopErr error
	for done := range results {
		switch {
		case done.err == nil:
			if err := acc.Add(done.index, done.state); err != nil {
				loopErr = err
				cancel()
				finish()
				continue
			}
			res.MembersUsed++
			cMembersDone.Inc()
			hMemberSec.Observe((done.end - done.start).Seconds())
			tel.Emit("member", done.index, 0, telemetry.PhaseDone)
			tl.Add(trace.SimulationTime, fmt.Sprintf("member-%d", done.index),
				done.start.Seconds(), done.end.Seconds())
		case errors.Is(done.err, context.Canceled) || errors.Is(done.err, context.DeadlineExceeded):
			res.MembersCancelled++
			cMembersCancelled.Inc()
			tel.Emit("member", done.index, 0, telemetry.PhaseCancelled)
			continue
		default:
			res.MembersFailed++
			cMembersFailed.Inc()
			tel.Emit("member", done.index, 0, telemetry.PhaseFailed)
		}

		if res.MembersUsed >= lastSVD+cfg.SVDBatch && !res.Converged {
			if err := runSVD(); err != nil {
				loopErr = err
				cancel()
				finish()
				continue
			}
		}

		notify()

		accounted := res.MembersUsed + res.MembersFailed
		t := int(target.Load())
		if accounted >= t && !res.Converged {
			if t >= cfg.MaxSize {
				finish() // out of budget: use what we have
				continue
			}
			next := growTarget(t, &cfg)
			target.Store(int64(next))
			gTarget.Set(float64(next))
			res.PoolSizes = append(res.PoolSizes, next)
			select {
			case targetChanged <- struct{}{}:
			default:
			}
		} else if accounted >= t && res.Converged && cfg.Policy == DrainAndUse {
			finish()
		}
	}
	finish()
	if loopErr != nil {
		return nil, loopErr
	}

	// Final SVD if members arrived since the last one (drain policy,
	// deadline leftovers, or non-aligned batch boundary).
	if acc.Len() >= 2 && (acc.Len() != lastSVD || cur == nil) {
		if err := runSVD(); err != nil {
			return nil, err
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("workflow: only %d members completed; cannot form a subspace", acc.Len())
	}
	res.Subspace = cur
	res.Mean = acc.EnsembleMean()
	res.Anomalies = acc.Anomalies()
	res.MemberIndices = acc.Indices()
	res.Elapsed = time.Since(start)
	return res, nil
}

func runWithRetries(ctx context.Context, retries, idx int, runner MemberRunner, tel *telemetry.Telemetry, cRetries *telemetry.Counter) ([]float64, error) {
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt > 0 {
			tel.Emit("member", idx, attempt, telemetry.PhaseRetried)
			cRetries.Inc()
		}
		var state []float64
		state, err = runner(ctx, idx)
		if err == nil {
			return state, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	return nil, err
}
