package workflow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"esse/internal/core"
	"esse/internal/trace"
)

// RunSerial executes the serial reference implementation of Fig. 3: a
// blocking perturb/forecast loop over all N members, followed by the
// diff loop (in perturbation order), followed by the SVD and the
// convergence test; on failure the ensemble is enlarged to N₂ and the
// loop restarts for members N+1..N₂.
//
// It deliberately retains the bottlenecks the paper lists — no exposed
// parallelism between forecasts, the diff loop waits for the whole
// batch, and the SVD waits for the diff loop — so that the Fig. 3 vs
// Fig. 4 benchmarks quantify what the MTC transformation buys.
func RunSerial(ctx context.Context, cfg Config, central []float64, runner MemberRunner) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	tl := trace.New()
	tel := cfg.Telemetry
	cRetries := tel.Counter("esse_workflow_retries_total", "Member attempts that failed and were retried.")
	acc := core.NewAccumulator(central)
	res := &Result{Timeline: tl, PoolSizes: []int{cfg.InitialSize}, Central: acc.Central()}

	deadline := time.Time{}
	if cfg.Deadline > 0 {
		deadline = start.Add(cfg.Deadline)
	}
	expired := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	var prev, cur *core.Subspace
	n := cfg.InitialSize
	batchStart := 0
	type pending struct {
		index int
		state []float64
	}
	for {
		// --- perturb/forecast loop (bottleneck 1: strictly sequential) ---
		var batch []pending
		for idx := batchStart; idx < n; idx++ {
			if ctx.Err() != nil || expired() {
				res.MembersCancelled += n - idx
				break
			}
			t0 := time.Since(start)
			// Serial members all run on the caller's lane (lane -1 =
			// inherit): the whole point of Fig. 3 is one sequential row.
			mctx, sp := tel.SpanCtx(ctx, "workflow", "member", int64(idx), -1)
			state, err := runWithRetries(mctx, cfg.Retries, idx, runner, tel, cRetries)
			sp.End()
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					res.MembersCancelled++
				} else {
					res.MembersFailed++
				}
				continue
			}
			batch = append(batch, pending{index: idx, state: state})
			tl.Add(trace.SimulationTime, fmt.Sprintf("member-%d", idx),
				t0.Seconds(), time.Since(start).Seconds())
		}

		// --- diff loop (bottleneck 2: runs only after the full batch,
		// in perturbation order, appending to the single matrix) ---
		for _, p := range batch {
			if err := acc.Add(p.index, p.state); err != nil {
				return nil, err
			}
			res.MembersUsed++
		}

		// --- SVD + convergence test (bottleneck 3: waits for diff) ---
		svdCtx, svdSp := tel.SpanCtx(ctx, "workflow", "svd", int64(res.SVDRounds), -1)
		anoms := acc.Anomalies()
		indices := acc.Indices()
		if cfg.Store != nil {
			if _, err := cfg.Store.WriteSnapshotCtx(svdCtx, anoms, indices); err != nil {
				svdSp.End()
				return nil, fmt.Errorf("workflow: diff publish: %w", err)
			}
			m, _, _, err := cfg.Store.ReadSafeCtx(svdCtx)
			if err != nil {
				svdSp.End()
				return nil, fmt.Errorf("workflow: SVD read: %w", err)
			}
			anoms = m
		}
		if anoms.Cols >= 2 {
			cur = core.SubspaceFromAnomalies(anoms, cfg.MaxRank, cfg.SigmaRelTol)
			res.SVDRounds++
			if prev != nil {
				ok, rho := cfg.Criterion.Converged(prev, cur)
				res.Rho = rho
				res.Converged = ok
			}
			prev = cur
		}
		svdSp.End()

		if res.Converged || ctx.Err() != nil || expired() || n >= cfg.MaxSize {
			break
		}
		batchStart = n
		n = growTarget(n, &cfg)
		res.PoolSizes = append(res.PoolSizes, n)
	}

	if cur == nil {
		return nil, fmt.Errorf("workflow: only %d members completed; cannot form a subspace", acc.Len())
	}
	res.Subspace = cur
	res.Mean = acc.EnsembleMean()
	res.Anomalies = acc.Anomalies()
	res.MemberIndices = acc.Indices()
	res.Elapsed = time.Since(start)
	return res, nil
}
