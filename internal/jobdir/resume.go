package jobdir

import (
	"context"
	"fmt"

	"esse/internal/workflow"
)

// ResumableRunner wraps a MemberRunner with tracker bookkeeping: a
// member that already completed successfully is NOT recomputed — its
// persisted forecast state is loaded back — and every fresh completion
// is persisted before it is reported. This is the paper's "if the ESSE
// execution gets stopped, it can only be restarted without rerunning all
// jobs" behaviour (§4.2), generalized to both submission strategies.
//
// Failures are recorded with a nonzero code; a restart retries them
// (matching the engine's failure-tolerance semantics rather than
// permanently poisoning an index).
func ResumableRunner(t *Tracker, inner workflow.MemberRunner) workflow.MemberRunner {
	return func(ctx context.Context, index int) ([]float64, error) {
		code, done, err := t.Status(index)
		if err == nil && done && code == 0 {
			state, loadErr := t.LoadStateCtx(ctx, index)
			if loadErr == nil {
				return state, nil
			}
			// Status said done but the state is unreadable: fall through
			// and recompute (the shared directory may have been pruned).
			if resetErr := t.Reset(index); resetErr != nil {
				return nil, fmt.Errorf("jobdir: member %d unreadable and unresettable: %w", index, resetErr)
			}
		}
		state, runErr := inner(ctx, index)
		if runErr != nil {
			if ctx.Err() == nil {
				// Real failure (not cancellation): record a nonzero code.
				//esselint:allow errdrop best-effort bookkeeping; a restart simply retries the member
				_ = t.Complete(index, 1)
			}
			return nil, runErr
		}
		if err := t.SaveStateCtx(ctx, index, state); err != nil {
			return nil, err
		}
		if err := t.Complete(index, 0); err != nil {
			return nil, err
		}
		return state, nil
	}
}
