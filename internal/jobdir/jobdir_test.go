package jobdir

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"esse/internal/core"
	"esse/internal/linalg"
	"esse/internal/rng"
	"esse/internal/workflow"
)

func TestStatusLifecycle(t *testing.T) {
	tr, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := tr.Status(3); err != nil || done {
		t.Fatalf("fresh member reported done (err %v)", err)
	}
	if err := tr.Complete(3, 0); err != nil {
		t.Fatal(err)
	}
	code, done, err := tr.Status(3)
	if err != nil || !done || code != 0 {
		t.Fatalf("status = (%d,%v,%v)", code, done, err)
	}
	if err := tr.Complete(4, 17); err != nil {
		t.Fatal(err)
	}
	code, done, _ = tr.Status(4)
	if !done || code != 17 {
		t.Fatalf("failure code not preserved: %d", code)
	}
}

func TestStatusSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	tr, _ := Open(dir)
	_ = tr.Complete(7, 0)
	tr2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, done, _ := tr2.Status(7)
	if !done {
		t.Fatal("status lost across reopen")
	}
}

func TestCompletedScan(t *testing.T) {
	tr, _ := Open(t.TempDir())
	_ = tr.Complete(2, 0)
	_ = tr.Complete(0, 0)
	_ = tr.Complete(5, 3)
	ok, bad, err := tr.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 2 || ok[0] != 0 || ok[1] != 2 {
		t.Fatalf("successes = %v", ok)
	}
	if len(bad) != 1 || bad[0] != 5 {
		t.Fatalf("failures = %v", bad)
	}
}

func TestResetForcesRerun(t *testing.T) {
	tr, _ := Open(t.TempDir())
	_ = tr.Complete(1, 0)
	_ = tr.SaveState(1, []float64{1, 2})
	if err := tr.Reset(1); err != nil {
		t.Fatal(err)
	}
	if _, done, _ := tr.Status(1); done {
		t.Fatal("Reset did not clear status")
	}
	if _, err := tr.LoadState(1); err == nil {
		t.Fatal("Reset did not clear state")
	}
	if err := tr.Reset(999); err != nil {
		t.Fatal("Reset of unknown member must be a no-op, got", err)
	}
}

func TestCleanupRemovesEverything(t *testing.T) {
	tr, _ := Open(t.TempDir())
	_ = tr.Complete(1, 0)
	_ = tr.SaveState(1, []float64{1})
	if err := tr.Cleanup(); err != nil {
		t.Fatal(err)
	}
	ok, bad, _ := tr.Completed()
	if len(ok)+len(bad) != 0 {
		t.Fatal("Cleanup left tracking files behind")
	}
}

func TestStateRoundTrip(t *testing.T) {
	tr, _ := Open(t.TempDir())
	want := []float64{1.5, -2.25, 3.125, 0}
	if err := tr.SaveState(9, want); err != nil {
		t.Fatal(err)
	}
	got, err := tr.LoadState(9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("state[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStateChecksumDetectsCorruption(t *testing.T) {
	tr, _ := Open(t.TempDir())
	_ = tr.SaveState(2, []float64{1, 2, 3})
	path := tr.statePath(2)
	data, _ := os.ReadFile(path)
	data[10] ^= 0x55
	_ = os.WriteFile(path, data, 0o644)
	if _, err := tr.LoadState(2); err == nil {
		t.Fatal("corrupt state loaded silently")
	}
}

func TestConcurrentCompletes(t *testing.T) {
	tr, _ := Open(t.TempDir())
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := tr.Complete(i, 0); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	ok, _, _ := tr.Completed()
	if len(ok) != 64 {
		t.Fatalf("%d completions recorded", len(ok))
	}
}

// --- resume integration ----------------------------------------------------

func toyTruth(seed uint64, dim, p int) *core.Subspace {
	s := rng.New(seed)
	a := linalg.NewDense(dim, p)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sigma := make([]float64, p)
	for i := range sigma {
		sigma[i] = float64(p - i)
	}
	return &core.Subspace{Modes: f.Q, Sigma: sigma}
}

func countingRunner(truth *core.Subspace, seed uint64, counter *int64, mu *sync.Mutex, delay time.Duration) workflow.MemberRunner {
	master := rng.New(seed)
	return func(ctx context.Context, index int) ([]float64, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		mu.Lock()
		*counter++
		mu.Unlock()
		return truth.Perturb(nil, master.Split(uint64(index)), 0.01), nil
	}
}

func TestResumableRunnerSkipsCompleted(t *testing.T) {
	tr, _ := Open(t.TempDir())
	truth := toyTruth(1, 20, 2)
	var calls int64
	var mu sync.Mutex
	runner := ResumableRunner(tr, countingRunner(truth, 2, &calls, &mu, 0))

	first, err := runner(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	second, err := runner(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("inner runner called %d times, want 1", calls)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("resumed state differs from computed state")
		}
	}
}

func TestResumableRunnerRecordsFailures(t *testing.T) {
	tr, _ := Open(t.TempDir())
	failing := func(ctx context.Context, index int) ([]float64, error) {
		return nil, errors.New("boom")
	}
	if _, err := ResumableRunner(tr, failing)(context.Background(), 3); err == nil {
		t.Fatal("failure swallowed")
	}
	code, done, _ := tr.Status(3)
	if !done || code == 0 {
		t.Fatalf("failure not recorded: code=%d done=%v", code, done)
	}
	// A failed index is retried, not skipped.
	var calls int64
	var mu sync.Mutex
	truth := toyTruth(3, 10, 2)
	runner := ResumableRunner(tr, countingRunner(truth, 4, &calls, &mu, 0))
	if _, err := runner(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("failed member was not retried")
	}
}

func TestWorkflowRestartWithoutRerunningAll(t *testing.T) {
	// Interrupt a run mid-flight, then restart with the same tracker:
	// the restart must recompute only the missing members, and the final
	// subspace must equal an uninterrupted run's.
	dir := t.TempDir()
	truth := toyTruth(5, 30, 2)
	cfg := workflow.DefaultConfig()
	cfg.InitialSize = 24
	cfg.MaxSize = 24
	cfg.Workers = 4
	cfg.SVDBatch = 8
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}

	var calls1 int64
	var mu sync.Mutex
	tr, _ := Open(dir)
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	_, _ = workflow.RunParallel(ctx, cfg,
		make([]float64, 30),
		ResumableRunner(tr, countingRunner(truth, 6, &calls1, &mu, 5*time.Millisecond)))
	done1, _, _ := tr.Completed()
	if len(done1) == 0 || len(done1) >= 24 {
		t.Skipf("interruption landed awkwardly: %d members done", len(done1))
	}

	// Restart with a fresh tracker handle on the same directory.
	tr2, _ := Open(dir)
	var calls2 int64
	res, err := workflow.RunParallel(context.Background(), cfg,
		make([]float64, 30),
		ResumableRunner(tr2, countingRunner(truth, 6, &calls2, &mu, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MembersUsed != 24 {
		t.Fatalf("restart used %d members", res.MembersUsed)
	}
	if int(calls2) != 24-len(done1) {
		t.Fatalf("restart recomputed %d members, want %d", calls2, 24-len(done1))
	}
	// Compare against an uninterrupted reference run.
	var calls3 int64
	ref, err := workflow.RunParallel(context.Background(), cfg,
		make([]float64, 30), countingRunner(truth, 6, &calls3, &mu, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rho := core.SimilarityCoefficient(res.Subspace, ref.Subspace); rho < 1-1e-8 {
		t.Fatalf("restarted subspace differs from uninterrupted run: rho=%v", rho)
	}
}

func TestStatusCorruptFile(t *testing.T) {
	tr, _ := Open(t.TempDir())
	if err := os.WriteFile(tr.statusPath(8), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Status(8); err == nil {
		t.Fatal("corrupt status file accepted")
	}
	// Completed must skip the corrupt entry rather than fail the scan.
	_ = tr.Complete(9, 0)
	ok, bad, err := tr.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 1 || ok[0] != 9 || len(bad) != 0 {
		t.Fatalf("scan with corrupt entry: ok=%v bad=%v", ok, bad)
	}
}

func TestCompletedIgnoresForeignFiles(t *testing.T) {
	tr, _ := Open(t.TempDir())
	_ = os.WriteFile(tr.Dir()+"/README", []byte("hi"), 0o644)
	_ = os.WriteFile(tr.Dir()+"/member_abc.status", []byte("0"), 0o644)
	_ = tr.Complete(1, 0)
	ok, bad, err := tr.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 1 || len(bad) != 0 {
		t.Fatalf("foreign files leaked into scan: ok=%v bad=%v", ok, bad)
	}
	// Cleanup removes member_ files but leaves everything else.
	if err := tr.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tr.Dir() + "/README"); err != nil {
		t.Fatal("Cleanup removed a non-tracking file")
	}
}

func TestLoadStateTruncated(t *testing.T) {
	tr, _ := Open(t.TempDir())
	_ = tr.SaveState(4, []float64{1, 2, 3})
	data, _ := os.ReadFile(tr.statePath(4))
	_ = os.WriteFile(tr.statePath(4), data[:10], 0o644)
	if _, err := tr.LoadState(4); err == nil {
		t.Fatal("truncated state accepted")
	}
	_ = os.WriteFile(tr.statePath(4), data[:len(data)-4], 0o644)
	if _, err := tr.LoadState(4); err == nil {
		t.Fatal("short state accepted")
	}
}

func TestCompleteNegativeIndex(t *testing.T) {
	tr, _ := Open(t.TempDir())
	if err := tr.Complete(-1, 0); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestResumableRunnerRecomputesOnLostState(t *testing.T) {
	// Status says done but the state file vanished (pruned shared dir):
	// the runner must recompute instead of failing.
	tr, _ := Open(t.TempDir())
	truth := toyTruth(9, 10, 2)
	var calls int64
	var mu sync.Mutex
	runner := ResumableRunner(tr, countingRunner(truth, 10, &calls, &mu, 0))
	if _, err := runner(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(tr.statePath(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := runner(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("runner called %d times, want recompute", calls)
	}
}
