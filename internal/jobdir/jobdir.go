// Package jobdir implements the paper's Section 4.2 bookkeeping:
//
//	"Dependencies are tracked using separate (per perturbation index)
//	 files containing the error codes of the singleton scripts ...
//	 These files reside in directories accessible directly or indirectly
//	 from all execution hosts so that state information can be readily
//	 shared."
//
// A Tracker owns such a directory: one status file per member index with
// the member's exit code, plus (optionally) the member's forecast state,
// checksummed. This is what makes an interrupted ESSE run restartable
// "without rerunning all jobs" — completed indices are detected and
// their results reloaded — and what the master script's kill-signal
// handler cleans up.
package jobdir

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"esse/internal/telemetry"
)

// Tracker manages per-member status and state files in one directory.
type Tracker struct {
	dir string

	// telemetry handles (nil no-ops unless Instrument is called)
	tel         *telemetry.Telemetry
	cCompletes  *telemetry.Counter
	cResets     *telemetry.Counter
	cStateSaves *telemetry.Counter
	cStateLoads *telemetry.Counter
}

// Instrument registers the tracker's metrics in tel and enables spans
// on the Ctx state variants. Call it before the tracker is shared
// between goroutines; a nil tel is a no-op.
func (t *Tracker) Instrument(tel *telemetry.Telemetry) {
	t.tel = tel
	t.cCompletes = tel.Counter("esse_jobdir_completes_total", "Member status files recorded.")
	t.cResets = tel.Counter("esse_jobdir_resets_total", "Member statuses forgotten to force a rerun.")
	t.cStateSaves = tel.Counter("esse_jobdir_state_saves_total", "Member forecast states persisted.")
	t.cStateLoads = tel.Counter("esse_jobdir_state_loads_total", "Member forecast states reloaded.")
}

// Open creates (or reopens) a tracker directory.
func Open(dir string) (*Tracker, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobdir: %w", err)
	}
	return &Tracker{dir: dir}, nil
}

// Dir returns the tracking directory.
func (t *Tracker) Dir() string { return t.dir }

func (t *Tracker) statusPath(index int) string {
	return filepath.Join(t.dir, fmt.Sprintf("member_%06d.status", index))
}

func (t *Tracker) statePath(index int) string {
	return filepath.Join(t.dir, fmt.Sprintf("member_%06d.state", index))
}

// Complete records the exit code for a member (0 = success). The write
// is atomic (temp file + rename) so concurrent readers never see a torn
// status.
func (t *Tracker) Complete(index, code int) error {
	if index < 0 {
		return fmt.Errorf("jobdir: negative index %d", index)
	}
	tmp := t.statusPath(index) + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(code)+"\n"), 0o644); err != nil {
		return fmt.Errorf("jobdir: %w", err)
	}
	if err := os.Rename(tmp, t.statusPath(index)); err != nil {
		return fmt.Errorf("jobdir: %w", err)
	}
	t.cCompletes.Inc()
	return nil
}

// Status returns the recorded exit code; done is false if the member has
// not completed (no status file).
func (t *Tracker) Status(index int) (code int, done bool, err error) {
	data, err := os.ReadFile(t.statusPath(index))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("jobdir: %w", err)
	}
	code, err = strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil {
		return 0, false, fmt.Errorf("jobdir: corrupt status for member %d: %w", index, err)
	}
	return code, true, nil
}

// Reset forgets a member's status and state (used to force a rerun).
func (t *Tracker) Reset(index int) error {
	for _, p := range []string{t.statusPath(index), t.statePath(index)} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("jobdir: %w", err)
		}
	}
	t.cResets.Inc()
	return nil
}

// Completed scans the directory and returns the indices with a recorded
// status, split into successes (code 0) and failures.
func (t *Tracker) Completed() (successes, failures []int, err error) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("jobdir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "member_") || !strings.HasSuffix(name, ".status") {
			continue
		}
		idxStr := strings.TrimSuffix(strings.TrimPrefix(name, "member_"), ".status")
		idx, convErr := strconv.Atoi(idxStr)
		if convErr != nil {
			continue
		}
		code, done, sErr := t.Status(idx)
		if sErr != nil || !done {
			continue
		}
		if code == 0 {
			successes = append(successes, idx)
		} else {
			failures = append(failures, idx)
		}
	}
	sort.Ints(successes)
	sort.Ints(failures)
	return successes, failures, nil
}

// Cleanup removes every tracking file — the master script's SIGTERM
// handler behaviour ("catches the kill signal and proceeds to cancel all
// pending jobs and do some cleanup").
func (t *Tracker) Cleanup() error {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return fmt.Errorf("jobdir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "member_") {
			if err := os.Remove(filepath.Join(t.dir, e.Name())); err != nil {
				return fmt.Errorf("jobdir: %w", err)
			}
		}
	}
	return nil
}

var stateCRC = crc64.MakeTable(crc64.ISO)

// SaveStateCtx is SaveState wrapped in a span parented under the
// active span in ctx (normally the member that produced the state), so
// checkpoint I/O shows up as a child in the trace tree.
func (t *Tracker) SaveStateCtx(ctx context.Context, index int, state []float64) error {
	_, sp := t.tel.SpanCtx(ctx, "jobdir", "save-state", int64(index), -1)
	defer sp.End()
	return t.SaveState(index, state)
}

// LoadStateCtx is LoadState wrapped in a span, the read-side twin of
// SaveStateCtx (a resumed member's "work" is exactly this load).
func (t *Tracker) LoadStateCtx(ctx context.Context, index int) ([]float64, error) {
	_, sp := t.tel.SpanCtx(ctx, "jobdir", "load-state", int64(index), -1)
	defer sp.End()
	return t.LoadState(index)
}

// SaveState persists a member's forecast state (atomic, checksummed).
func (t *Tracker) SaveState(index int, state []float64) error {
	buf := make([]byte, 8+8*len(state)+8)
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(state)))
	for i, v := range state {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	sum := crc64.Checksum(buf[:8+8*len(state)], stateCRC)
	binary.LittleEndian.PutUint64(buf[8+8*len(state):], sum)
	tmp := t.statePath(index) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("jobdir: %w", err)
	}
	if err := os.Rename(tmp, t.statePath(index)); err != nil {
		return fmt.Errorf("jobdir: %w", err)
	}
	t.cStateSaves.Inc()
	return nil
}

// LoadState reads a member's persisted forecast state back.
func (t *Tracker) LoadState(index int) ([]float64, error) {
	buf, err := os.ReadFile(t.statePath(index))
	if err != nil {
		return nil, fmt.Errorf("jobdir: %w", err)
	}
	if len(buf) < 16 {
		return nil, fmt.Errorf("jobdir: state file for member %d truncated", index)
	}
	n := binary.LittleEndian.Uint64(buf[:8])
	want := 8 + 8*int(n) + 8
	if len(buf) != want {
		return nil, fmt.Errorf("jobdir: state file for member %d has %d bytes, want %d", index, len(buf), want)
	}
	sum := binary.LittleEndian.Uint64(buf[want-8:])
	if crc64.Checksum(buf[:want-8], stateCRC) != sum {
		return nil, fmt.Errorf("jobdir: state checksum mismatch for member %d", index)
	}
	state := make([]float64, n)
	for i := range state {
		state[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8+8*i:]))
	}
	t.cStateLoads.Inc()
	return state, nil
}
