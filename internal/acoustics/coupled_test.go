package acoustics

import (
	"math"
	"testing"

	"esse/internal/core"
	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/ocean"
	"esse/internal/rng"
)

// coupledFixture builds a small ocean+TL ensemble from jittered
// climatologies, plus one held-out "truth" member.
func coupledFixture(t *testing.T, members int) (*CoupledEnsemble, []float64, *TLField) {
	t.Helper()
	g := grid.MontereyBay(12, 12, 4)
	master := rng.New(99)
	scaler, err := core.NewScaler(grid.NewLayout(g, ocean.Vars(g)), core.DefaultVarScales())
	if err != nil {
		t.Fatal(err)
	}
	tlCfg := DefaultTLConfig()
	tlCfg.NumRays = 150
	tlCfg.RangeCells, tlCfg.DepthCells = 20, 12

	build := func(seed uint64) ([]float64, *TLField) {
		st := master.Split(seed)
		cfg := ocean.DefaultConfig(g)
		cfg.Climo = cfg.Climo.Jitter(st)
		m := ocean.New(cfg, st.Split(1))
		m.Run(15)
		state := m.State(nil)
		sec, err := ExtractSection(m.Layout, state, 1, g.NY/2, g.NX-2, g.NY/2, 18)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := ComputeTL(sec, tlCfg)
		if err != nil {
			t.Fatal(err)
		}
		return scaler.ToScaled(nil, state), tl
	}

	var oceanZ [][]float64
	var tls []*TLField
	for mIdx := 0; mIdx < members; mIdx++ {
		z, tl := build(uint64(mIdx))
		oceanZ = append(oceanZ, z)
		tls = append(tls, tl)
	}
	truthZ, truthTL := build(uint64(members + 1000))
	ens, err := NewCoupledEnsemble(oceanZ, tls, 5.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ens, truthZ, truthTL
}

func TestNewCoupledEnsembleValidation(t *testing.T) {
	tl := &TLField{TL: linalg.NewDense(3, 3)}
	if _, err := NewCoupledEnsemble([][]float64{{1}}, []*TLField{tl}, 5, 0); err == nil {
		t.Fatal("single member accepted")
	}
	if _, err := NewCoupledEnsemble([][]float64{{1}, {2}}, []*TLField{tl}, 5, 0); err == nil {
		t.Fatal("member/TL count mismatch accepted")
	}
	if _, err := NewCoupledEnsemble([][]float64{{1}, {2}}, []*TLField{tl, tl}, 0, 0); err == nil {
		t.Fatal("zero TL scale accepted")
	}
}

func TestCoupledEnsembleStructure(t *testing.T) {
	ens, _, _ := coupledFixture(t, 6)
	if ens.CoupledDim() != ens.OceanDim+ens.TLRows*ens.TLCols {
		t.Fatal("coupled dimension arithmetic wrong")
	}
	if err := ens.Subspace.Check(1e-7); err != nil {
		t.Fatal(err)
	}
	if len(ens.Mean) != ens.CoupledDim() {
		t.Fatal("mean length wrong")
	}
	// Cross-coupling: at least one dominant mode must have energy in
	// BOTH the ocean and the TL blocks (that is the whole point).
	mode := ens.Subspace.Modes.Col(nil, 0)
	oceanE, tlE := 0.0, 0.0
	for i, v := range mode {
		if i < ens.OceanDim {
			oceanE += v * v
		} else {
			tlE += v * v
		}
	}
	if oceanE < 1e-6 || tlE < 1e-6 {
		t.Fatalf("leading coupled mode lacks cross-coupling: ocean %v, TL %v", oceanE, tlE)
	}
}

func TestTLPartRoundTrip(t *testing.T) {
	ens, _, _ := coupledFixture(t, 4)
	tl := ens.TLPart(ens.Mean)
	if len(tl) != ens.TLRows*ens.TLCols {
		t.Fatal("TLPart length wrong")
	}
	// Scaled-back values should be plausible dB numbers.
	for _, v := range tl {
		if v < 0 || v > 250 {
			t.Fatalf("implausible mean TL %v dB", v)
		}
	}
	if len(ens.OceanPart(ens.Mean)) != ens.OceanDim {
		t.Fatal("OceanPart length wrong")
	}
}

func TestNewTLNetworkValidation(t *testing.T) {
	ens, _, _ := coupledFixture(t, 4)
	if _, err := ens.NewTLNetwork([]TLObservation{{RI: -1, ZI: 0, Stddev: 1}}); err == nil {
		t.Fatal("negative range index accepted")
	}
	if _, err := ens.NewTLNetwork([]TLObservation{{RI: 0, ZI: 999, Stddev: 1}}); err == nil {
		t.Fatal("depth index overflow accepted")
	}
	if _, err := ens.NewTLNetwork([]TLObservation{{RI: 0, ZI: 0, Stddev: 0}}); err == nil {
		t.Fatal("zero error accepted")
	}
}

func TestAssimilateTLReducesResidualAndUpdatesOcean(t *testing.T) {
	ens, _, truthTL := coupledFixture(t, 8)
	// Observe the truth TL at a grid of points.
	var obs []TLObservation
	var yDB []float64
	for ri := 2; ri < ens.TLRows; ri += 5 {
		for zi := 1; zi < ens.TLCols; zi += 4 {
			obs = append(obs, TLObservation{RI: ri, ZI: zi, Stddev: 1.0})
			yDB = append(yDB, truthTL.TL.At(ri, zi))
		}
	}
	net, err := ens.NewTLNetwork(obs)
	if err != nil {
		t.Fatal(err)
	}
	priorVar := ens.Subspace.TotalVariance()
	priorOcean := append([]float64(nil), ens.OceanPart(ens.Mean)...)
	an, err := ens.AssimilateTL(net, yDB)
	if err != nil {
		t.Fatal(err)
	}
	if an.ResidualNorm >= an.InnovationNorm {
		t.Fatalf("TL assimilation did not reduce the innovation: %v -> %v",
			an.InnovationNorm, an.ResidualNorm)
	}
	if ens.Subspace.TotalVariance() >= priorVar {
		t.Fatal("TL assimilation did not reduce coupled uncertainty")
	}
	// The ocean block must move: acoustic data updates the physics
	// through the cross-covariances.
	moved := 0.0
	post := ens.OceanPart(ens.Mean)
	for i := range post {
		d := post[i] - priorOcean[i]
		moved += d * d
	}
	if math.Sqrt(moved) == 0 {
		t.Fatal("ocean state unchanged by TL assimilation: no cross-coupling")
	}
}

func TestAssimilateTLDimensionError(t *testing.T) {
	ens, _, _ := coupledFixture(t, 4)
	net, err := ens.NewTLNetwork([]TLObservation{{RI: 1, ZI: 1, Stddev: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ens.AssimilateTL(net, []float64{1, 2}); err == nil {
		t.Fatal("observation count mismatch accepted")
	}
}
