package acoustics

import (
	"fmt"

	"esse/internal/core"
	"esse/internal/linalg"
)

// This file implements the coupled physical-acoustical estimation of the
// paper's Section 2.2: "The coupled physical-acoustical covariance P for
// the section is computed and non-dimensionalized. Its dominant
// eigenvectors (uncertainty modes) can be used for coupled physical-
// acoustical assimilation of hydrographic and TL data. ESSE has also
// been extended to acoustic data assimilation."
//
// The coupled state stacks the (already non-dimensionalized) ocean state
// with the TL field scaled by a reference uncertainty; the coupled error
// subspace then carries ocean–acoustic cross-covariances, so assimilating
// a transmission-loss measurement updates the ocean fields and vice
// versa.

// CoupledEnsemble holds the coupled ocean+TL ensemble statistics.
type CoupledEnsemble struct {
	OceanDim int
	TLRows   int // range cells
	TLCols   int // depth cells
	// TLScale non-dimensionalizes TL (dB); ~a few dB of expected
	// acoustic uncertainty.
	TLScale float64

	Mean     []float64 // coupled mean [ocean_z ; TL/TLScale]
	Subspace *core.Subspace
}

// CoupledDim returns the stacked state dimension.
func (c *CoupledEnsemble) CoupledDim() int { return c.OceanDim + c.TLRows*c.TLCols }

// NewCoupledEnsemble builds the coupled mean and error subspace from
// per-member scaled ocean states and their TL fields. maxRank truncates
// the coupled subspace (0 keeps all non-degenerate modes).
func NewCoupledEnsemble(oceanZ [][]float64, tl []*TLField, tlScale float64, maxRank int) (*CoupledEnsemble, error) {
	n := len(oceanZ)
	if n < 2 {
		return nil, fmt.Errorf("acoustics: coupled ensemble needs >= 2 members, got %d", n)
	}
	if len(tl) != n {
		return nil, fmt.Errorf("acoustics: %d ocean members but %d TL fields", n, len(tl))
	}
	if tlScale <= 0 {
		return nil, fmt.Errorf("acoustics: non-positive TL scale %v", tlScale)
	}
	oceanDim := len(oceanZ[0])
	tlRows, tlCols := tl[0].TL.Rows, tl[0].TL.Cols
	tlDim := tlRows * tlCols
	dim := oceanDim + tlDim

	// Stack members and compute the coupled mean.
	stacked := linalg.NewDense(dim, n)
	for j := 0; j < n; j++ {
		if len(oceanZ[j]) != oceanDim {
			return nil, fmt.Errorf("acoustics: member %d ocean dim %d != %d", j, len(oceanZ[j]), oceanDim)
		}
		if tl[j].TL.Rows != tlRows || tl[j].TL.Cols != tlCols {
			return nil, fmt.Errorf("acoustics: member %d TL shape mismatch", j)
		}
		for i, v := range oceanZ[j] {
			stacked.Set(i, j, v)
		}
		for i, v := range tl[j].TL.Data {
			stacked.Set(oceanDim+i, j, v/tlScale)
		}
	}
	mean := make([]float64, dim)
	for j := 0; j < n; j++ {
		for i := 0; i < dim; i++ {
			mean[i] += stacked.At(i, j)
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	anoms := linalg.NewDense(dim, n)
	for j := 0; j < n; j++ {
		for i := 0; i < dim; i++ {
			anoms.Set(i, j, stacked.At(i, j)-mean[i])
		}
	}
	sub := core.SubspaceFromAnomalies(anoms, maxRank, 1e-10)
	return &CoupledEnsemble{
		OceanDim: oceanDim,
		TLRows:   tlRows,
		TLCols:   tlCols,
		TLScale:  tlScale,
		Mean:     mean,
		Subspace: sub,
	}, nil
}

// OceanPart returns the ocean block of a coupled vector (still scaled).
func (c *CoupledEnsemble) OceanPart(coupled []float64) []float64 {
	return coupled[:c.OceanDim]
}

// TLPart returns the TL block of a coupled vector in dB.
func (c *CoupledEnsemble) TLPart(coupled []float64) []float64 {
	out := make([]float64, c.TLRows*c.TLCols)
	for i := range out {
		out[i] = coupled[c.OceanDim+i] * c.TLScale
	}
	return out
}

// TLObservation is one transmission-loss measurement at a TL grid cell.
type TLObservation struct {
	RI, ZI int
	// Stddev is the measurement error in dB.
	Stddev float64
}

// TLNetwork exposes TL observations as a core.ObsOperator over the
// coupled state (scaled units).
type TLNetwork struct {
	ens *CoupledEnsemble
	obs []TLObservation
}

// NewTLNetwork validates the observations against the ensemble's TL grid.
func (c *CoupledEnsemble) NewTLNetwork(obs []TLObservation) (*TLNetwork, error) {
	for i, o := range obs {
		if o.RI < 0 || o.RI >= c.TLRows || o.ZI < 0 || o.ZI >= c.TLCols {
			return nil, fmt.Errorf("acoustics: TL obs %d at (%d,%d) outside %dx%d grid",
				i, o.RI, o.ZI, c.TLRows, c.TLCols)
		}
		if o.Stddev <= 0 {
			return nil, fmt.Errorf("acoustics: TL obs %d has non-positive error", i)
		}
	}
	return &TLNetwork{ens: c, obs: obs}, nil
}

func (t *TLNetwork) offset(o TLObservation) int {
	return t.ens.OceanDim + o.RI*t.ens.TLCols + o.ZI
}

// Len returns the number of TL observations.
func (t *TLNetwork) Len() int { return len(t.obs) }

// ApplyH gathers the observed TL cells from a coupled (scaled) state.
func (t *TLNetwork) ApplyH(state []float64) []float64 {
	y := make([]float64, len(t.obs))
	for i, o := range t.obs {
		y[i] = state[t.offset(o)]
	}
	return y
}

// ApplyHMat gathers the observed rows of a coupled mode matrix.
func (t *TLNetwork) ApplyHMat(e *linalg.Dense) *linalg.Dense {
	out := linalg.NewDense(len(t.obs), e.Cols)
	for i, o := range t.obs {
		copy(out.Row(i), e.Row(t.offset(o)))
	}
	return out
}

// RDiag returns the observation error variances in scaled units.
func (t *TLNetwork) RDiag() []float64 {
	r := make([]float64, len(t.obs))
	for i, o := range t.obs {
		s := o.Stddev / t.ens.TLScale
		r[i] = s * s
	}
	return r
}

// ScaleObs converts TL measurements in dB to scaled units.
func (t *TLNetwork) ScaleObs(yDB []float64) []float64 {
	out := make([]float64, len(yDB))
	for i, v := range yDB {
		out[i] = v / t.ens.TLScale
	}
	return out
}

// AssimilateTL performs the coupled update: TL measurements (dB) adjust
// the whole coupled state — including the ocean fields, through the
// ocean–acoustic cross-covariances of the subspace. It returns the
// analysis and replaces the ensemble mean and subspace with the
// posterior.
func (c *CoupledEnsemble) AssimilateTL(net *TLNetwork, yDB []float64) (*core.Analysis, error) {
	an, err := core.Assimilate(c.Mean, c.Subspace, net, net.ScaleObs(yDB))
	if err != nil {
		return nil, err
	}
	c.Mean = an.Mean
	c.Subspace = an.Posterior
	return an, nil
}
