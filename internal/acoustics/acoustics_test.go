package acoustics

import (
	"context"
	"math"
	"testing"

	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/ocean"
	"esse/internal/rng"
)

// syntheticSection builds a downward-refracting section: sound speed
// decreasing with depth (typical summer coastal profile).
func syntheticSection(nr, nz int, rMax, zMax float64) *Section {
	sec := &Section{
		Ranges: make([]float64, nr),
		Depths: make([]float64, nz),
		C:      linalg.NewDense(nr, nz),
	}
	for i := range sec.Ranges {
		sec.Ranges[i] = rMax * float64(i) / float64(nr-1)
	}
	for k := range sec.Depths {
		sec.Depths[k] = zMax * float64(k) / float64(nz-1)
	}
	for i := 0; i < nr; i++ {
		for k := 0; k < nz; k++ {
			sec.C.Set(i, k, 1500-0.05*sec.Depths[k])
		}
	}
	return sec
}

func oceanSection(t *testing.T, seed uint64) (*Section, *ocean.Model) {
	t.Helper()
	g := grid.MontereyBay(16, 16, 5)
	m := ocean.New(ocean.DefaultConfig(g), rng.New(seed))
	st := m.State(nil)
	sec, err := ExtractSection(m.Layout, st, 1, 8, 14, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	return sec, m
}

func TestSpeedAtInterpolation(t *testing.T) {
	sec := syntheticSection(5, 5, 1000, 100)
	// At depth 50 the profile gives 1500 - 2.5 = 1497.5 everywhere.
	if got := sec.SpeedAt(500, 50); math.Abs(got-1497.5) > 1e-9 {
		t.Fatalf("SpeedAt = %v, want 1497.5", got)
	}
	// Clamping outside bounds.
	if got := sec.SpeedAt(-10, -10); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("clamped SpeedAt = %v", got)
	}
	if got := sec.SpeedAt(1e9, 1e9); math.Abs(got-1495) > 1e-9 {
		t.Fatalf("clamped deep SpeedAt = %v", got)
	}
}

func TestDCdZSign(t *testing.T) {
	sec := syntheticSection(5, 20, 1000, 100)
	if g := sec.dCdZ(500, 50); g >= 0 {
		t.Fatalf("downward-refracting profile must have dC/dz < 0, got %v", g)
	}
}

func TestExtractSectionFromOcean(t *testing.T) {
	sec, m := oceanSection(t, 1)
	if sec.NR() != 24 || sec.NZ() != 5 {
		t.Fatalf("section shape %dx%d", sec.NR(), sec.NZ())
	}
	if sec.Ranges[0] != 0 || sec.Ranges[23] <= 0 {
		t.Fatalf("ranges wrong: %v..%v", sec.Ranges[0], sec.Ranges[23])
	}
	// Sound speeds in seawater range.
	for _, c := range sec.C.Data {
		if c < 1440 || c > 1560 {
			t.Fatalf("sound speed %v outside plausible range", c)
		}
	}
	// Warmer surface → faster sound at surface than at depth (column mean).
	surf, bot := 0.0, 0.0
	for i := 0; i < sec.NR(); i++ {
		surf += sec.C.At(i, 0)
		bot += sec.C.At(i, sec.NZ()-1)
	}
	if surf <= bot {
		t.Fatal("no downward-refracting structure from stratified ocean")
	}
	_ = m
}

func TestExtractSectionErrors(t *testing.T) {
	g := grid.MontereyBay(8, 8, 3)
	l := grid.NewLayout(g, ocean.Vars(g))
	st := l.NewState()
	if _, err := ExtractSection(l, st, -1, 0, 5, 5, 10); err == nil {
		t.Fatal("out-of-grid endpoint accepted")
	}
	if _, err := ExtractSection(l, st, 0, 0, 5, 5, 1); err == nil {
		t.Fatal("single-point section accepted")
	}
	lNoT := grid.NewLayout(g, []grid.VarSpec{{Name: "eta", Levels: 1}})
	if _, err := ExtractSection(lNoT, lNoT.NewState(), 0, 0, 5, 5, 10); err == nil {
		t.Fatal("layout without T accepted")
	}
}

func TestComputeTLBasicShape(t *testing.T) {
	sec := syntheticSection(20, 20, 10e3, 200)
	cfg := DefaultTLConfig()
	f, err := ComputeTL(sec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.TL.Rows != cfg.RangeCells || f.TL.Cols != cfg.DepthCells {
		t.Fatalf("TL shape %dx%d", f.TL.Rows, f.TL.Cols)
	}
	if !f.TL.IsFinite() {
		t.Fatal("TL field has NaN/Inf")
	}
	// Mean TL at the far third of ranges must exceed the near third:
	// sound gets weaker with range.
	near, far := 0.0, 0.0
	third := cfg.RangeCells / 3
	for i := 0; i < third; i++ {
		for k := 0; k < cfg.DepthCells; k++ {
			near += f.At(i, k)
			far += f.At(cfg.RangeCells-1-i, k)
		}
	}
	if far <= near {
		t.Fatalf("TL does not increase with range: near %v far %v", near, far)
	}
}

func TestTLFrequencyAbsorption(t *testing.T) {
	// Higher frequency → larger Thorp absorption → larger far-field TL.
	sec := syntheticSection(20, 20, 20e3, 200)
	lo := DefaultTLConfig()
	lo.FreqKHz = 0.5
	hi := DefaultTLConfig()
	hi.FreqKHz = 10
	fLo, err := ComputeTL(sec, lo)
	if err != nil {
		t.Fatal(err)
	}
	fHi, err := ComputeTL(sec, hi)
	if err != nil {
		t.Fatal(err)
	}
	iLast := lo.RangeCells - 1
	meanLo, meanHi := 0.0, 0.0
	for k := 0; k < lo.DepthCells; k++ {
		meanLo += fLo.At(iLast, k)
		meanHi += fHi.At(iLast, k)
	}
	if meanHi <= meanLo {
		t.Fatalf("10 kHz far TL (%v) not above 0.5 kHz (%v)", meanHi, meanLo)
	}
}

func TestTLSourceDepthMatters(t *testing.T) {
	sec, _ := oceanSection(t, 2)
	shallow := DefaultTLConfig()
	shallow.SourceDepth = 10
	deep := DefaultTLConfig()
	deep.SourceDepth = 150
	f1, err := ComputeTL(sec, shallow)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ComputeTL(sec, deep)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range f1.TL.Data {
		diff += math.Abs(f1.TL.Data[i] - f2.TL.Data[i])
	}
	if diff == 0 {
		t.Fatal("source depth has no effect on the TL field")
	}
}

func TestComputeTLValidation(t *testing.T) {
	sec := syntheticSection(10, 10, 1000, 100)
	bad := DefaultTLConfig()
	bad.NumRays = 3
	if _, err := ComputeTL(sec, bad); err == nil {
		t.Fatal("tiny ray fan accepted")
	}
	bad2 := DefaultTLConfig()
	bad2.SourceDepth = 1e6
	if _, err := ComputeTL(sec, bad2); err == nil {
		t.Fatal("source below bottom accepted")
	}
}

func TestFlatten(t *testing.T) {
	sec := syntheticSection(10, 10, 1000, 100)
	f, err := ComputeTL(sec, DefaultTLConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := f.Flatten()
	if len(v) != f.TL.Rows*f.TL.Cols {
		t.Fatalf("Flatten length %d", len(v))
	}
	v[0] = -12345
	if f.TL.Data[0] == -12345 {
		t.Fatal("Flatten must copy")
	}
}

func TestEnsembleTLUncertainty(t *testing.T) {
	// Perturbed ocean states must produce nonzero TL standard deviation.
	g := grid.MontereyBay(14, 14, 4)
	var sections []*Section
	for seed := uint64(0); seed < 6; seed++ {
		m := ocean.New(ocean.DefaultConfig(g), rng.New(seed))
		m.Run(30) // different noise → different T/S → different c
		st := m.State(nil)
		sec, err := ExtractSection(m.Layout, st, 1, 7, 12, 7, 16)
		if err != nil {
			t.Fatal(err)
		}
		sections = append(sections, sec)
	}
	cfg := DefaultTLConfig()
	cfg.NumRays = 200
	stats, err := EnsembleTL(sections, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Mean.TL.IsFinite() || !stats.Std.TL.IsFinite() {
		t.Fatal("ensemble stats not finite")
	}
	maxStd := stats.Std.TL.MaxAbs()
	if maxStd <= 0 {
		t.Fatal("ocean uncertainty did not transfer to TL uncertainty")
	}
	for _, v := range stats.Std.TL.Data {
		if v < 0 {
			t.Fatal("negative standard deviation")
		}
	}
}

func TestEnsembleTLEmpty(t *testing.T) {
	if _, err := EnsembleTL(nil, DefaultTLConfig()); err == nil {
		t.Fatal("empty ensemble accepted")
	}
}

func TestClimateProductCount(t *testing.T) {
	sec := syntheticSection(10, 10, 5e3, 150)
	spec := ClimateSpec{
		Sections:     []*Section{sec, sec, sec},
		SourceDepths: []float64{10, 50},
		FreqsKHz:     []float64{0.5, 1, 2},
		Base:         DefaultTLConfig(),
		Workers:      4,
	}
	if spec.TaskCount() != 18 {
		t.Fatalf("TaskCount = %d", spec.TaskCount())
	}
	spec.Base.NumRays = 100
	res, err := ComputeClimate(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 18 || res.Failed != 0 {
		t.Fatalf("tasks=%d failed=%d", len(res.Tasks), res.Failed)
	}
}

func TestClimateSinkReceivesAllFields(t *testing.T) {
	sec := syntheticSection(10, 10, 5e3, 150)
	spec := ClimateSpec{
		Sections:     []*Section{sec},
		SourceDepths: []float64{20, 40},
		FreqsKHz:     []float64{1},
		Base:         DefaultTLConfig(),
		Workers:      2,
	}
	spec.Base.NumRays = 60
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	got := 0
	_, err := ComputeClimate(context.Background(), spec, func(task ClimateTask, f *TLField) {
		<-mu
		got++
		mu <- struct{}{}
		if f == nil {
			t.Error("nil field delivered")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("sink received %d fields, want 2", got)
	}
}

func TestClimateCancellation(t *testing.T) {
	sec := syntheticSection(30, 30, 50e3, 300)
	spec := ClimateSpec{
		Sections:     []*Section{sec},
		SourceDepths: make([]float64, 50),
		FreqsKHz:     []float64{1},
		Base:         DefaultTLConfig(),
		Workers:      2,
	}
	for i := range spec.SourceDepths {
		spec.SourceDepths[i] = 10 + float64(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start
	res, err := ComputeClimate(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 0 {
		t.Fatalf("%d tasks completed after pre-cancellation", len(res.Tasks))
	}
}

func TestClimateEmptySpec(t *testing.T) {
	if _, err := ComputeClimate(context.Background(), ClimateSpec{}, nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func BenchmarkComputeTL(b *testing.B) {
	sec := syntheticSection(20, 20, 10e3, 200)
	cfg := DefaultTLConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeTL(sec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
