package acoustics

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"esse/internal/telemetry"
)

// ClimateSpec enumerates the "acoustic climate" workload: TL for every
// combination of vertical slice, source depth and frequency in a region
// — "running multiple independent tasks for different sources/
// frequencies/slices at different times". The combinatorial product is
// what produced the paper's 6000+ short acoustics jobs.
type ClimateSpec struct {
	Sections     []*Section
	SourceDepths []float64
	FreqsKHz     []float64
	Base         TLConfig
	Workers      int
	// Telemetry, when non-nil, receives per-task lifecycle events and
	// TL task metrics. The nil default is a no-op on every hot path.
	Telemetry *telemetry.Telemetry
}

// taskID flattens a ClimateTask into the linear index used for
// lifecycle events and trace span names.
func (s *ClimateSpec) taskID(t ClimateTask) int {
	return (t.Slice*len(s.SourceDepths)+t.Source)*len(s.FreqsKHz) + t.Freq
}

// TaskCount returns the total number of independent TL tasks.
func (s *ClimateSpec) TaskCount() int {
	return len(s.Sections) * len(s.SourceDepths) * len(s.FreqsKHz)
}

// ClimateTask identifies one TL computation in the climate product.
type ClimateTask struct {
	Slice, Source, Freq int
}

// ClimateTaskResult is the per-task summary kept by the climate run
// (full fields are delivered through the optional sink to bound memory).
type ClimateTaskResult struct {
	Task    ClimateTask
	MeanTL  float64
	Elapsed time.Duration
}

// ClimateResult summarizes an acoustic-climate computation.
type ClimateResult struct {
	Tasks     []ClimateTaskResult
	Failed    int
	Cancelled int
	Elapsed   time.Duration
}

// ComputeClimate runs the full task product on a worker pool. If sink is
// non-nil it receives every completed field (from multiple goroutines).
func ComputeClimate(ctx context.Context, spec ClimateSpec, sink func(ClimateTask, *TLField)) (*ClimateResult, error) {
	if spec.TaskCount() == 0 {
		return nil, fmt.Errorf("acoustics: empty climate specification")
	}
	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	start := time.Now()

	// Metric registration allocates, so it happens before any task loop
	// runs; the handles are nil no-ops when telemetry is disabled.
	tel := spec.Telemetry
	cTasksDone := tel.Counter("esse_acoustics_tasks_total", "Acoustic climate TL tasks by final outcome.", "outcome", "done")
	cTasksFailed := tel.Counter("esse_acoustics_tasks_total", "Acoustic climate TL tasks by final outcome.", "outcome", "failed")
	cTasksCancelled := tel.Counter("esse_acoustics_tasks_total", "Acoustic climate TL tasks by final outcome.", "outcome", "cancelled")
	hTaskSec := tel.Histogram("esse_acoustics_task_seconds", "Wall-clock duration of one TL computation.", nil)

	// The pool span adopts whatever parent rides in on ctx (an ocean
	// cycle, an HTTP request) and every TL task parents under it.
	ctx, poolSpan := tel.SpanCtx(ctx, "acoustics", "climate", -1, 0)
	defer poolSpan.End()

	tasks := make(chan ClimateTask)
	go func() {
		defer close(tasks)
		for si := range spec.Sections {
			for di := range spec.SourceDepths {
				for fi := range spec.FreqsKHz {
					t := ClimateTask{Slice: si, Source: di, Freq: fi}
					tel.Emit("climate", spec.taskID(t), 0, telemetry.PhaseQueued)
					select {
					case tasks <- t:
					case <-ctx.Done():
						return
					}
				}
			}
		}
	}()

	res := &ClimateResult{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		lane := int64(w + 1)
		go func() {
			defer wg.Done()
			// One solver per worker amortizes the TL grids across tasks.
			// A non-nil sink retains each field, so that path must hand
			// out fresh allocations instead.
			var solver TLSolver
			for task := range tasks {
				// Emitted by the receiving worker so queued < dispatched <
				// running is ordered per task, not racing the dispatcher.
				tel.Emit("climate", spec.taskID(task), 0, telemetry.PhaseDispatched)
				if ctx.Err() != nil {
					tel.Emit("climate", spec.taskID(task), 0, telemetry.PhaseCancelled)
					cTasksCancelled.Inc()
					mu.Lock()
					res.Cancelled++
					mu.Unlock()
					continue
				}
				cfg := spec.Base
				cfg.SourceDepth = spec.SourceDepths[task.Source]
				cfg.FreqKHz = spec.FreqsKHz[task.Freq]
				tel.Emit("climate", spec.taskID(task), 0, telemetry.PhaseRunning)
				_, sp := tel.SpanCtx(ctx, "acoustics", "tl-task", int64(spec.taskID(task)), lane)
				t0 := time.Now()
				var field *TLField
				var err error
				if sink != nil {
					field, err = ComputeTL(spec.Sections[task.Slice], cfg)
				} else {
					field, err = solver.Compute(spec.Sections[task.Slice], cfg)
				}
				sp.End()
				hTaskSec.Observe(time.Since(t0).Seconds())
				if err != nil {
					tel.Emit("climate", spec.taskID(task), 0, telemetry.PhaseFailed)
					cTasksFailed.Inc()
					mu.Lock()
					res.Failed++
					mu.Unlock()
					continue
				}
				tel.Emit("climate", spec.taskID(task), 0, telemetry.PhaseDone)
				cTasksDone.Inc()
				if sink != nil {
					sink(task, field)
				}
				mean := 0.0
				for _, v := range field.TL.Data {
					mean += v
				}
				mean /= float64(len(field.TL.Data))
				mu.Lock()
				res.Tasks = append(res.Tasks, ClimateTaskResult{
					Task:    task,
					MeanTL:  mean,
					Elapsed: time.Since(t0),
				})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Canonicalize: workers append in completion order, which depends on
	// scheduling; the published result must be independent of Workers.
	sort.Slice(res.Tasks, func(a, b int) bool {
		ta, tb := res.Tasks[a].Task, res.Tasks[b].Task
		if ta.Slice != tb.Slice {
			return ta.Slice < tb.Slice
		}
		if ta.Source != tb.Source {
			return ta.Source < tb.Source
		}
		return ta.Freq < tb.Freq
	})
	res.Elapsed = time.Since(start)
	return res, nil
}
