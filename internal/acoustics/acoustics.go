// Package acoustics implements the ocean-acoustics side of the paper:
// sound-speed sections extracted from the ocean state, a ray-traced
// broadband transmission-loss (TL) solver over vertical range–depth
// sections, the transfer of ESSE ocean uncertainty into TL uncertainty,
// and the "acoustic climate" workload — a very large ensemble of short
// TL computations over sources, frequencies and slices (the 6000+
// three-minute jobs of Section 5.2.1).
//
// The solver is an N×2D incoherent ray-counting model: rays launched
// from the source refract through the range-dependent sound-speed field
// (paraxial ray equations), reflect at surface and bottom with loss, and
// deposit energy on a range–depth grid; intensity combines the ray
// density (vertical focusing), cylindrical spreading and Thorp volume
// absorption. It reproduces the qualitative TL structure (spreading
// loss, ducting, shadow zones) that couples ocean and acoustic
// uncertainties in the paper.
package acoustics

import (
	"fmt"
	"math"

	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/physics"
)

// Section is a vertical slice of sound speed: C[ri][zi] on the Ranges ×
// Depths mesh.
type Section struct {
	Ranges []float64 // m from the section start
	Depths []float64 // m downward
	C      *linalg.Dense
}

// NR returns the number of range points.
func (s *Section) NR() int { return len(s.Ranges) }

// NZ returns the number of depth points.
func (s *Section) NZ() int { return len(s.Depths) }

// SpeedAt bilinearly interpolates the sound speed at (r, z), clamped to
// the section bounds.
func (s *Section) SpeedAt(r, z float64) float64 {
	ri, rf := locate(s.Ranges, r)
	zi, zf := locate(s.Depths, z)
	c00 := s.C.At(ri, zi)
	c10 := s.C.At(ri+1, zi)
	c01 := s.C.At(ri, zi+1)
	c11 := s.C.At(ri+1, zi+1)
	return (1-rf)*(1-zf)*c00 + rf*(1-zf)*c10 + (1-rf)*zf*c01 + rf*zf*c11
}

// dCdZ estimates the vertical sound-speed gradient at (r, z).
func (s *Section) dCdZ(r, z float64) float64 {
	dz := (s.Depths[len(s.Depths)-1] - s.Depths[0]) / float64(len(s.Depths)-1)
	if dz == 0 {
		return 0
	}
	zp := math.Min(z+dz/2, s.Depths[len(s.Depths)-1])
	zm := math.Max(z-dz/2, s.Depths[0])
	//esselint:allow floatcmp exact equality is the zero-denominator guard for the gradient below
	if zp == zm {
		return 0
	}
	return (s.SpeedAt(r, zp) - s.SpeedAt(r, zm)) / (zp - zm)
}

// locate finds the cell index and fraction for x in the ascending grid xs.
func locate(xs []float64, x float64) (int, float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0
	}
	if x >= xs[n-1] {
		return n - 2, 1
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (x - xs[lo]) / (xs[lo+1] - xs[lo])
	return lo, f
}

// ExtractSection samples temperature and salinity from a packed ocean
// state along the horizontal line (i0,j0)→(i1,j1) at nRange points,
// converting to sound speed at every model level via Mackenzie's
// formula. This is how "ESSE ocean physics uncertainties are transferred
// to acoustical uncertainties along such a section".
func ExtractSection(l *grid.StateLayout, state []float64, i0, j0, i1, j1, nRange int) (*Section, error) {
	g := l.G
	if !g.InBounds(i0, j0) || !g.InBounds(i1, j1) {
		return nil, fmt.Errorf("acoustics: section endpoints outside grid")
	}
	if nRange < 2 {
		return nil, fmt.Errorf("acoustics: need at least 2 range points")
	}
	tIdx := l.VarIndex("T")
	sIdx := l.VarIndex("S")
	if tIdx < 0 || sIdx < 0 {
		return nil, fmt.Errorf("acoustics: state lacks T/S variables")
	}
	dxTotal := float64(i1-i0) * g.Dx
	dyTotal := float64(j1-j0) * g.Dy
	length := math.Hypot(dxTotal, dyTotal)
	sec := &Section{
		Ranges: make([]float64, nRange),
		Depths: append([]float64(nil), g.Depths...),
		C:      linalg.NewDense(nRange, g.NZ),
	}
	for ri := 0; ri < nRange; ri++ {
		f := float64(ri) / float64(nRange-1)
		sec.Ranges[ri] = f * length
		fi := float64(i0) + f*float64(i1-i0)
		fj := float64(j0) + f*float64(j1-j0)
		for k := 0; k < g.NZ; k++ {
			tVal := bilinear(l, state, tIdx, fi, fj, k)
			sVal := bilinear(l, state, sIdx, fi, fj, k)
			sec.C.Set(ri, k, physics.SoundSpeedMackenzie(tVal, sVal, g.Depths[k]))
		}
	}
	return sec, nil
}

// bilinear interpolates variable vi at fractional grid position (fi, fj),
// level k.
func bilinear(l *grid.StateLayout, state []float64, vi int, fi, fj float64, k int) float64 {
	g := l.G
	i := int(fi)
	j := int(fj)
	if i >= g.NX-1 {
		i = g.NX - 2
	}
	if j >= g.NY-1 {
		j = g.NY - 2
	}
	xf := fi - float64(i)
	yf := fj - float64(j)
	slab := l.Level(state, vi, k)
	v00 := slab[g.Idx2(i, j)]
	v10 := slab[g.Idx2(i+1, j)]
	v01 := slab[g.Idx2(i, j+1)]
	v11 := slab[g.Idx2(i+1, j+1)]
	return (1-xf)*(1-yf)*v00 + xf*(1-yf)*v10 + (1-xf)*yf*v01 + xf*yf*v11
}

// TLConfig parameterizes a transmission-loss computation.
type TLConfig struct {
	// SourceDepth in meters.
	SourceDepth float64
	// FreqKHz sets the Thorp volume absorption.
	FreqKHz float64
	// NumRays is the launch fan size.
	NumRays int
	// MaxAngleDeg bounds the launch fan (± degrees from horizontal).
	MaxAngleDeg float64
	// RangeCells × DepthCells is the output TL grid resolution.
	RangeCells, DepthCells int
	// BottomLossDB is applied per bottom bounce.
	BottomLossDB float64
}

// DefaultTLConfig returns a configuration for a coastal section and a
// mid-frequency source.
func DefaultTLConfig() TLConfig {
	return TLConfig{
		SourceDepth:  30,
		FreqKHz:      1,
		NumRays:      600,
		MaxAngleDeg:  20,
		RangeCells:   60,
		DepthCells:   30,
		BottomLossDB: 3,
	}
}

// TLField is a transmission-loss field in dB on a range–depth grid.
type TLField struct {
	Ranges []float64
	Depths []float64
	TL     *linalg.Dense // RangeCells × DepthCells
}

// At returns TL at cell (ri, zi).
func (f *TLField) At(ri, zi int) float64 { return f.TL.At(ri, zi) }

// Flatten returns the TL values as a vector (row-major), used to stack
// acoustic fields into coupled state vectors.
func (f *TLField) Flatten() []float64 {
	out := make([]float64, len(f.TL.Data))
	copy(out, f.TL.Data)
	return out
}

// ComputeTL traces the ray fan through the section and returns the TL
// field. The field is freshly allocated and owned by the caller; use a
// TLSolver to amortize the grid allocations over repeated solves.
func ComputeTL(sec *Section, cfg TLConfig) (*TLField, error) {
	var s TLSolver
	return s.Compute(sec, cfg)
}

// TLSolver runs repeated TL solves of one grid shape through reusable
// buffers: the ray-deposit grid and the output field are allocated on
// the first Compute (or whenever the requested shape changes) and
// overwritten in place afterwards. The returned field is owned by the
// solver — callers that retain it across calls must use ComputeTL or
// copy it. The zero value is ready to use; a solver must not be shared
// between goroutines.
type TLSolver struct {
	deposit *linalg.Dense
	field   *TLField
}

// Compute traces the ray fan through the section into the solver's
// reused field.
func (s *TLSolver) Compute(sec *Section, cfg TLConfig) (*TLField, error) {
	if cfg.NumRays < 10 {
		return nil, fmt.Errorf("acoustics: need at least 10 rays")
	}
	if sec.NR() < 2 || sec.NZ() < 2 {
		return nil, fmt.Errorf("acoustics: degenerate section %dx%d", sec.NR(), sec.NZ())
	}
	rMax := sec.Ranges[len(sec.Ranges)-1]
	zMax := sec.Depths[len(sec.Depths)-1]
	if cfg.SourceDepth < 0 || cfg.SourceDepth > zMax {
		return nil, fmt.Errorf("acoustics: source depth %v outside water column [0, %v]", cfg.SourceDepth, zMax)
	}
	nr, nz := cfg.RangeCells, cfg.DepthCells
	if s.deposit == nil || s.deposit.Rows != nr || s.deposit.Cols != nz {
		s.deposit = linalg.NewDense(nr, nz)
		s.field = &TLField{
			Ranges: make([]float64, nr),
			Depths: make([]float64, nz),
			TL:     linalg.NewDense(nr, nz),
		}
	} else {
		for i := range s.deposit.Data {
			s.deposit.Data[i] = 0
		}
	}
	deposit := s.deposit
	dr := rMax / float64(nr) / 4 // 4 integration steps per output cell
	cellH := zMax / float64(nz)

	w := 1.0 / float64(cfg.NumRays)
	maxAngle := cfg.MaxAngleDeg * math.Pi / 180
	for rayI := 0; rayI < cfg.NumRays; rayI++ {
		theta := -maxAngle + 2*maxAngle*float64(rayI)/float64(cfg.NumRays-1)
		z := cfg.SourceDepth
		amp := w
		r := 0.0
		for r < rMax && amp > 1e-12 {
			c := sec.SpeedAt(r, z)
			gradC := sec.dCdZ(r, z)
			theta += -gradC / c * dr
			z += math.Tan(theta) * dr
			// Surface and bottom reflections.
			if z < 0 {
				z = -z
				theta = -theta
			}
			if z > zMax {
				z = 2*zMax - z
				theta = -theta
				amp *= math.Pow(10, -cfg.BottomLossDB/10)
			}
			if z < 0 { // pathological double reflection: clamp
				z = 0
			}
			r += dr
			ri := int(r / rMax * float64(nr))
			zi := int(z / zMax * float64(nz))
			if ri >= nr {
				ri = nr - 1
			}
			if zi >= nz {
				zi = nz - 1
			}
			if zi < 0 {
				zi = 0
			}
			deposit.Set(ri, zi, deposit.At(ri, zi)+amp)
		}
	}

	alpha := physics.ThorpAttenuation(cfg.FreqKHz) // dB/km
	out := s.field
	for i := 0; i < nr; i++ {
		out.Ranges[i] = (float64(i) + 0.5) * rMax / float64(nr)
	}
	for k := 0; k < nz; k++ {
		out.Depths[k] = (float64(k) + 0.5) * zMax / float64(nz)
	}
	// Intensity = deposited ray weight / cell height (vertical focusing)
	// × 1/r (cylindrical spreading); reference intensity normalizes the
	// first range column so TL starts near 10·log10(r).
	const tiny = 1e-300
	ref := 1.0 / cellH / 1.0 // all energy through 1 cell at r = 1 m
	for i := 0; i < nr; i++ {
		rr := out.Ranges[i]
		for k := 0; k < nz; k++ {
			intensity := deposit.At(i, k) / cellH / rr
			tl := -10*math.Log10((intensity+tiny)/ref) + alpha*rr/1000
			if tl > 200 {
				tl = 200 // shadow-zone floor
			}
			out.TL.Set(i, k, tl)
		}
	}
	return out, nil
}

// TLStats holds the ensemble mean and standard deviation of TL fields —
// the acoustical uncertainty transferred from the ocean ensemble.
type TLStats struct {
	Mean *TLField
	Std  *TLField
}

// EnsembleTL computes TL for every member section and reduces to mean
// and standard deviation per range–depth cell.
func EnsembleTL(sections []*Section, cfg TLConfig) (*TLStats, error) {
	if len(sections) == 0 {
		return nil, fmt.Errorf("acoustics: empty ensemble")
	}
	var mean, m2 *linalg.Dense
	var tmpl *TLField
	// The Welford reduction only reads each member's field before
	// moving on, so one solver's buffers serve the whole ensemble.
	var solver TLSolver
	for n, sec := range sections {
		f, err := solver.Compute(sec, cfg)
		if err != nil {
			return nil, fmt.Errorf("acoustics: member %d: %w", n, err)
		}
		if mean == nil {
			tmpl = f
			mean = linalg.NewDense(f.TL.Rows, f.TL.Cols)
			m2 = linalg.NewDense(f.TL.Rows, f.TL.Cols)
		}
		// Welford's online mean/variance update.
		k := float64(n + 1)
		for i, v := range f.TL.Data {
			delta := v - mean.Data[i]
			mean.Data[i] += delta / k
			m2.Data[i] += delta * (v - mean.Data[i])
		}
	}
	std := linalg.NewDense(mean.Rows, mean.Cols)
	if len(sections) > 1 {
		inv := 1 / float64(len(sections)-1)
		for i, v := range m2.Data {
			std.Data[i] = math.Sqrt(v * inv)
		}
	}
	return &TLStats{
		Mean: &TLField{Ranges: tmpl.Ranges, Depths: tmpl.Depths, TL: mean},
		Std:  &TLField{Ranges: tmpl.Ranges, Depths: tmpl.Depths, TL: std},
	}, nil
}
