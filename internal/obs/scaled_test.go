package obs

import (
	"math"
	"testing"

	"esse/internal/linalg"
)

func scaledFixture(t *testing.T) (*Network, *ScaledNetwork, []float64) {
	t.Helper()
	l := testLayout()
	n := NewNetwork(l)
	if err := n.Add(Observation{Var: "T", I: 2, J: 3, K: 1, Stddev: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(Observation{Var: "eta", I: 1, J: 1, K: 0, Stddev: 0.02}); err != nil {
		t.Fatal(err)
	}
	scale := make([]float64, l.Dim())
	for i := range scale {
		scale[i] = 1
	}
	// T scaled by 0.5, eta by 0.05.
	for _, v := range l.SliceByName(scale, "T") {
		_ = v
	}
	tSlice := l.SliceByName(scale, "T")
	for i := range tSlice {
		tSlice[i] = 0.5
	}
	etaSlice := l.SliceByName(scale, "eta")
	for i := range etaSlice {
		etaSlice[i] = 0.05
	}
	sn, err := NewScaled(n, scale)
	if err != nil {
		t.Fatal(err)
	}
	return n, sn, scale
}

func TestScaledRDiag(t *testing.T) {
	n, sn, _ := scaledFixture(t)
	r := n.RDiag()
	rz := sn.RDiag()
	// T obs: (0.5/0.5)² = 1; eta obs: (0.02/0.05)² = 0.16.
	if math.Abs(rz[0]-1) > 1e-12 {
		t.Fatalf("scaled T variance = %v, want 1", rz[0])
	}
	if math.Abs(rz[1]-0.16) > 1e-12 {
		t.Fatalf("scaled eta variance = %v, want 0.16", rz[1])
	}
	// Original untouched.
	if math.Abs(r[0]-0.25) > 1e-12 {
		t.Fatal("RDiag mutated the base network")
	}
}

func TestScaledScaleObs(t *testing.T) {
	_, sn, _ := scaledFixture(t)
	y := sn.ScaleObs([]float64{10, 0.1})
	if math.Abs(y[0]-20) > 1e-12 { // 10 / 0.5
		t.Fatalf("scaled T obs = %v, want 20", y[0])
	}
	if math.Abs(y[1]-2) > 1e-12 { // 0.1 / 0.05
		t.Fatalf("scaled eta obs = %v, want 2", y[1])
	}
}

func TestScaledApplyHConsistency(t *testing.T) {
	// Invariant: H_z(x ⊘ s) == (H x) ⊘ s_obs, i.e. scaling commutes.
	n, sn, scale := scaledFixture(t)
	l := n.Layout
	x := make([]float64, l.Dim())
	for i := range x {
		x[i] = float64(i%17) * 0.3
	}
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] / scale[i]
	}
	direct := sn.ApplyH(z)
	viaPhysical := sn.ScaleObs(n.ApplyH(x))
	for i := range direct {
		if math.Abs(direct[i]-viaPhysical[i]) > 1e-12 {
			t.Fatalf("scaling does not commute at obs %d: %v vs %v", i, direct[i], viaPhysical[i])
		}
	}
}

func TestScaledApplyHMat(t *testing.T) {
	n, sn, _ := scaledFixture(t)
	e := linalg.NewDense(n.Layout.Dim(), 2)
	offs := n.Offsets()
	e.Set(offs[0], 0, 3)
	he := sn.ApplyHMat(e)
	if he.At(0, 0) != 3 || he.At(1, 0) != 0 {
		t.Fatalf("ApplyHMat gather wrong: %v", he)
	}
}

func TestNewScaledValidation(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	if _, err := NewScaled(n, []float64{1, 2}); err == nil {
		t.Fatal("wrong-length scale accepted")
	}
	bad := make([]float64, l.Dim())
	if _, err := NewScaled(n, bad); err == nil {
		t.Fatal("zero scales accepted")
	}
}

func TestOffsetsMatchApplyH(t *testing.T) {
	n, _, _ := scaledFixture(t)
	offs := n.Offsets()
	x := make([]float64, n.Layout.Dim())
	for i, off := range offs {
		x[off] = float64(i + 1)
	}
	y := n.ApplyH(x)
	for i := range offs {
		if y[i] != float64(i+1) {
			t.Fatalf("Offsets()[%d] inconsistent with ApplyH", i)
		}
	}
}
