package obs

import (
	"fmt"

	"esse/internal/linalg"
)

// Offsets returns the flat state-vector offset of every observation, in
// network order.
func (n *Network) Offsets() []int {
	out := make([]int, len(n.Obs))
	for i, o := range n.Obs {
		out[i] = o.offset
	}
	return out
}

// ScaledNetwork adapts a Network to a non-dimensionalized state space:
// if z = x ⊘ s, then observing element e of x at error σ is the same as
// observing element e of z at error σ/s[e]. It satisfies core.ObsOperator,
// so assimilation in scaled space needs no other changes.
type ScaledNetwork struct {
	n     *Network
	scale []float64 // per state element
}

// NewScaled wraps the network with the per-element state scales.
func NewScaled(n *Network, scale []float64) (*ScaledNetwork, error) {
	if len(scale) != n.Layout.Dim() {
		return nil, fmt.Errorf("obs: scale vector has dim %d, state has %d", len(scale), n.Layout.Dim())
	}
	for i, s := range scale {
		if s <= 0 {
			return nil, fmt.Errorf("obs: non-positive scale %v at element %d", s, i)
		}
	}
	return &ScaledNetwork{n: n, scale: scale}, nil
}

// Len returns the number of observations.
func (s *ScaledNetwork) Len() int { return s.n.Len() }

// ApplyH gathers the observed elements of a SCALED state vector.
func (s *ScaledNetwork) ApplyH(z []float64) []float64 { return s.n.ApplyH(z) }

// ApplyHMat gathers the observed rows of a scaled-space mode matrix.
func (s *ScaledNetwork) ApplyHMat(e *linalg.Dense) *linalg.Dense { return s.n.ApplyHMat(e) }

// RDiag returns the observation error variances in scaled units.
func (s *ScaledNetwork) RDiag() []float64 {
	r := s.n.RDiag()
	for i, o := range s.n.Obs {
		sc := s.scale[o.offset]
		r[i] /= sc * sc
	}
	return r
}

// ScaleObs converts physical observation values to scaled units.
func (s *ScaledNetwork) ScaleObs(y []float64) []float64 {
	if len(y) != len(s.n.Obs) {
		panic("obs: ScaleObs length mismatch")
	}
	out := make([]float64, len(y))
	for i, o := range s.n.Obs {
		out[i] = y[i] / s.scale[o.offset]
	}
	return out
}
