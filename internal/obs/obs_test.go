package obs

import (
	"math"
	"testing"

	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/rng"
)

func testLayout() *grid.StateLayout {
	g := grid.MontereyBay(12, 12, 4)
	return grid.NewLayout(g, []grid.VarSpec{
		{Name: "eta", Levels: 1},
		{Name: "T", Levels: 4},
		{Name: "S", Levels: 4},
	})
}

func TestAddResolvesOffset(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	if err := n.Add(Observation{Platform: CTD, Var: "T", I: 3, J: 4, K: 2, Stddev: 0.1}); err != nil {
		t.Fatal(err)
	}
	state := l.NewState()
	state[l.Offset(l.VarIndex("T"), 3, 4, 2)] = 7.5
	y := n.ApplyH(state)
	if len(y) != 1 || y[0] != 7.5 {
		t.Fatalf("ApplyH = %v, want [7.5]", y)
	}
}

func TestAddRejectsBadObservations(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	cases := []Observation{
		{Var: "nope", I: 0, J: 0, K: 0, Stddev: 1},
		{Var: "T", I: -1, J: 0, K: 0, Stddev: 1},
		{Var: "T", I: 0, J: 99, K: 0, Stddev: 1},
		{Var: "T", I: 0, J: 0, K: 9, Stddev: 1},
		{Var: "eta", I: 0, J: 0, K: 1, Stddev: 1}, // eta has 1 level
		{Var: "T", I: 0, J: 0, K: 0, Stddev: 0},
	}
	for i, c := range cases {
		if err := n.Add(c); err == nil {
			t.Fatalf("case %d: bad observation accepted: %+v", i, c)
		}
	}
	if n.Len() != 0 {
		t.Fatal("rejected observations must not be stored")
	}
}

func TestApplyHMatGathersRows(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	if err := n.Add(Observation{Var: "T", I: 1, J: 1, K: 0, Stddev: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(Observation{Var: "S", I: 2, J: 2, K: 3, Stddev: 0.1}); err != nil {
		t.Fatal(err)
	}
	e := linalg.NewDense(l.Dim(), 2)
	off1 := l.Offset(l.VarIndex("T"), 1, 1, 0)
	off2 := l.Offset(l.VarIndex("S"), 2, 2, 3)
	e.Set(off1, 0, 1.5)
	e.Set(off2, 1, -2.5)
	he := n.ApplyHMat(e)
	if he.Rows != 2 || he.Cols != 2 {
		t.Fatalf("HE shape %dx%d", he.Rows, he.Cols)
	}
	if he.At(0, 0) != 1.5 || he.At(1, 1) != -2.5 || he.At(0, 1) != 0 {
		t.Fatalf("HE content wrong: %v", he)
	}
}

func TestRDiag(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	_ = n.Add(Observation{Var: "T", I: 0, J: 0, K: 0, Stddev: 0.5})
	r := n.RDiag()
	if len(r) != 1 || math.Abs(r[0]-0.25) > 1e-15 {
		t.Fatalf("RDiag = %v", r)
	}
}

func TestSampleNoiseStatistics(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	_ = n.Add(Observation{Var: "T", I: 5, J: 5, K: 0, Stddev: 0.3})
	truth := l.NewState()
	truth[l.Offset(l.VarIndex("T"), 5, 5, 0)] = 12
	s := rng.New(1)
	const draws = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		y := n.Sample(truth, s)
		sum += y[0]
		sumSq += y[0] * y[0]
	}
	mean := sum / draws
	sd := math.Sqrt(sumSq/draws - mean*mean)
	if math.Abs(mean-12) > 0.01 {
		t.Fatalf("sample mean %v, want ~12", mean)
	}
	if math.Abs(sd-0.3) > 0.01 {
		t.Fatalf("sample stddev %v, want ~0.3", sd)
	}
}

func TestCTDSectionFullDepth(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	if err := n.AddCTDSection(2, 2, 2, 0, 3, 0.05, 0.02); err != nil {
		t.Fatal(err)
	}
	// 3 stations × 4 levels × 2 variables
	if n.Len() != 24 {
		t.Fatalf("CTD section yielded %d obs, want 24", n.Len())
	}
	counts := n.CountByPlatform()
	if counts[CTD] != 24 {
		t.Fatalf("platform counts = %v", counts)
	}
}

func TestCTDSectionSkipsOffGrid(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	// Walks off the grid after 2 stations.
	if err := n.AddCTDSection(10, 0, 5, 0, 4, 0.05, 0.02); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 8 { // only station at i=10 is in bounds: 1 station × 4 × 2
		t.Fatalf("CTD off-grid section yielded %d obs, want 8", n.Len())
	}
}

func TestGliderYoCyclesDepth(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	if err := n.AddGliderYo(0, 0, 1, 0, 8, 0.1); err != nil {
		t.Fatal(err)
	}
	levels := map[int]bool{}
	for _, o := range n.Obs {
		levels[o.K] = true
	}
	if len(levels) != 4 {
		t.Fatalf("glider sampled %d distinct levels, want 4", len(levels))
	}
}

func TestSSTSwathSurfaceOnly(t *testing.T) {
	l := testLayout()
	n := NewNetwork(l)
	if err := n.AddSSTSwath(4, 0.5); err != nil {
		t.Fatal(err)
	}
	if n.Len() == 0 {
		t.Fatal("empty SST swath")
	}
	for _, o := range n.Obs {
		if o.K != 0 || o.Var != "T" || o.Platform != SatelliteSST {
			t.Fatalf("bad SST observation %+v", o)
		}
	}
}

func TestAOSN2NetworkMultiPlatform(t *testing.T) {
	l := testLayout()
	n, err := AOSN2Network(l)
	if err != nil {
		t.Fatal(err)
	}
	counts := n.CountByPlatform()
	for _, p := range []Platform{CTD, AUV, Glider, SatelliteSST} {
		if counts[p] == 0 {
			t.Fatalf("AOSN2 network missing platform %v (counts %v)", p, counts)
		}
	}
	if n.Len() < 50 {
		t.Fatalf("AOSN2 network has only %d observations", n.Len())
	}
}

func TestPlatformString(t *testing.T) {
	if CTD.String() != "CTD" || Glider.String() != "glider" {
		t.Fatal("platform names wrong")
	}
	if Platform(99).String() == "" {
		t.Fatal("unknown platform must still render")
	}
}
