// Package obs models the ocean observing system of the paper's AOSN-II
// exercise: CTD casts, AUV and glider tracks, and satellite SST swaths.
//
// Each observation measures one scalar of the packed model state (a
// point measurement operator H), carries a platform tag and an error
// standard deviation, and can be sampled from a "truth" state with
// Gaussian noise — the twin-experiment substitute for the real 2003
// Monterey Bay campaign data.
package obs

import (
	"fmt"

	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/rng"
)

// Platform identifies the observing platform type.
type Platform int

const (
	CTD Platform = iota
	AUV
	Glider
	SatelliteSST
)

// String returns the platform name.
func (p Platform) String() string {
	switch p {
	case CTD:
		return "CTD"
	case AUV:
		return "AUV"
	case Glider:
		return "glider"
	case SatelliteSST:
		return "SST"
	default:
		return fmt.Sprintf("platform(%d)", int(p))
	}
}

// Observation is a single point measurement of one state variable.
type Observation struct {
	Platform Platform
	Var      string // state variable name, e.g. "T"
	I, J, K  int    // grid location
	Stddev   float64
	// offset is the flat index into the packed state vector.
	offset int
}

// Network is a collection of observations bound to a state layout.
type Network struct {
	Layout *grid.StateLayout
	Obs    []Observation
}

// NewNetwork creates an empty network on the given layout.
func NewNetwork(l *grid.StateLayout) *Network {
	return &Network{Layout: l}
}

// Add appends an observation, resolving and validating its state offset.
func (n *Network) Add(o Observation) error {
	vi := n.Layout.VarIndex(o.Var)
	if vi < 0 {
		return fmt.Errorf("obs: unknown variable %q", o.Var)
	}
	g := n.Layout.G
	if !g.InBounds(o.I, o.J) {
		return fmt.Errorf("obs: location (%d,%d) outside grid", o.I, o.J)
	}
	if o.K < 0 || o.K >= n.Layout.Vars[vi].Levels {
		return fmt.Errorf("obs: level %d out of range for %q", o.K, o.Var)
	}
	if o.Stddev <= 0 {
		return fmt.Errorf("obs: non-positive error stddev %v", o.Stddev)
	}
	o.offset = n.Layout.Offset(vi, o.I, o.J, o.K)
	n.Obs = append(n.Obs, o)
	return nil
}

// Len returns the number of observations.
func (n *Network) Len() int { return len(n.Obs) }

// ApplyH computes y = H x for the packed state vector.
func (n *Network) ApplyH(state []float64) []float64 {
	y := make([]float64, len(n.Obs))
	for i, o := range n.Obs {
		y[i] = state[o.offset]
	}
	return y
}

// ApplyHMat computes H E for a mode matrix E (stateDim × p) by row
// gathering — the point operator never needs an explicit H matrix.
func (n *Network) ApplyHMat(e *linalg.Dense) *linalg.Dense {
	out := linalg.NewDense(len(n.Obs), e.Cols)
	for i, o := range n.Obs {
		copy(out.Row(i), e.Row(o.offset))
	}
	return out
}

// RDiag returns the diagonal of the observation error covariance R.
func (n *Network) RDiag() []float64 {
	r := make([]float64, len(n.Obs))
	for i, o := range n.Obs {
		r[i] = o.Stddev * o.Stddev
	}
	return r
}

// Sample draws y = H x_truth + ε with ε ~ N(0, R).
func (n *Network) Sample(truth []float64, noise *rng.Stream) []float64 {
	y := n.ApplyH(truth)
	for i := range y {
		y[i] += n.Obs[i].Stddev * noise.Norm()
	}
	return y
}

// CountByPlatform returns the number of observations per platform.
func (n *Network) CountByPlatform() map[Platform]int {
	m := make(map[Platform]int)
	for _, o := range n.Obs {
		m[o.Platform]++
	}
	return m
}

// --- Campaign-style network generators -----------------------------------

// AddCTDSection adds full-depth T and S casts at count stations spaced
// along a line starting at (i0, j0) with per-station step (di, dj).
func (n *Network) AddCTDSection(i0, j0, di, dj, count int, tStd, sStd float64) error {
	g := n.Layout.G
	for s := 0; s < count; s++ {
		i, j := i0+s*di, j0+s*dj
		if !g.InBounds(i, j) {
			continue
		}
		for k := 0; k < g.NZ; k++ {
			if err := n.Add(Observation{Platform: CTD, Var: "T", I: i, J: j, K: k, Stddev: tStd}); err != nil {
				return err
			}
			if err := n.Add(Observation{Platform: CTD, Var: "S", I: i, J: j, K: k, Stddev: sStd}); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddAUVTrack adds temperature observations at a fixed level along a
// straight track.
func (n *Network) AddAUVTrack(i0, j0, di, dj, count, level int, tStd float64) error {
	g := n.Layout.G
	for s := 0; s < count; s++ {
		i, j := i0+s*di, j0+s*dj
		if !g.InBounds(i, j) {
			continue
		}
		if err := n.Add(Observation{Platform: AUV, Var: "T", I: i, J: j, K: level, Stddev: tStd}); err != nil {
			return err
		}
	}
	return nil
}

// AddGliderYo adds a glider doing a sawtooth in depth along a track:
// the level cycles through the water column as the glider advances.
func (n *Network) AddGliderYo(i0, j0, di, dj, count int, tStd float64) error {
	g := n.Layout.G
	for s := 0; s < count; s++ {
		i, j := i0+s*di, j0+s*dj
		if !g.InBounds(i, j) {
			continue
		}
		k := s % g.NZ
		if err := n.Add(Observation{Platform: Glider, Var: "T", I: i, J: j, K: k, Stddev: tStd}); err != nil {
			return err
		}
	}
	return nil
}

// AddSSTSwath adds satellite surface-temperature observations on a
// subsampled grid (every stride-th point).
func (n *Network) AddSSTSwath(stride int, tStd float64) error {
	if stride < 1 {
		stride = 1
	}
	g := n.Layout.G
	for j := 0; j < g.NY; j += stride {
		for i := 0; i < g.NX; i += stride {
			if err := n.Add(Observation{Platform: SatelliteSST, Var: "T", I: i, J: j, K: 0, Stddev: tStd}); err != nil {
				return err
			}
		}
	}
	return nil
}

// AOSN2Network builds a network resembling the AOSN-II multi-platform
// deployment: an SST swath, two CTD sections, an AUV track and a glider.
func AOSN2Network(l *grid.StateLayout) (*Network, error) {
	n := NewNetwork(l)
	g := l.G
	if err := n.AddSSTSwath(maxInt(g.NX/8, 2), 0.5); err != nil {
		return nil, err
	}
	if err := n.AddCTDSection(g.NX/6, g.NY/5, g.NX/8, 0, 5, 0.05, 0.02); err != nil {
		return nil, err
	}
	if err := n.AddCTDSection(g.NX/5, g.NY/2, 0, g.NY/8, 5, 0.05, 0.02); err != nil {
		return nil, err
	}
	if err := n.AddAUVTrack(g.NX/4, g.NY/3, 1, 1, minInt(g.NX, g.NY)/2, 1, 0.08); err != nil {
		return nil, err
	}
	if err := n.AddGliderYo(g.NX/2, g.NY/6, 0, 1, 2*g.NY/3, 0.1); err != nil {
		return nil, err
	}
	return n, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
