package adaptive

import (
	"math"
	"testing"

	"esse/internal/core"
	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/obs"
	"esse/internal/rng"
)

// twoModeSubspace has mode 0 (σ=3) on elements {0,1} and mode 1 (σ=1)
// on elements {5,6}, so correlations are easy to reason about.
func twoModeSubspace() *core.Subspace {
	e := linalg.NewDense(10, 2)
	s := 1 / math.Sqrt2
	e.Set(0, 0, s)
	e.Set(1, 0, s)
	e.Set(5, 1, s)
	e.Set(6, 1, s)
	return &core.Subspace{Modes: e, Sigma: []float64{3, 1}}
}

func TestGreedyPicksHighestVarianceFirst(t *testing.T) {
	sub := twoModeSubspace()
	cands := []Candidate{
		{Offset: 5, Stddev: 0.1}, // on the weak mode
		{Offset: 0, Stddev: 0.1}, // on the strong mode
	}
	plan, err := Greedy(sub, cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen[0] != 1 {
		t.Fatalf("greedy picked candidate %d, want the strong-mode one", plan.Chosen[0])
	}
}

func TestGreedyDiversifiesAfterFirstPick(t *testing.T) {
	// Elements 0 and 1 carry the SAME mode; observing one makes the
	// other nearly worthless. A good planner then samples the other mode
	// even though element 1's marginal variance is 4.5x element 5's.
	sub := twoModeSubspace()
	cands := []Candidate{
		{Offset: 0, Stddev: 0.01},
		{Offset: 1, Stddev: 0.01},
		{Offset: 5, Stddev: 0.01},
	}
	plan, err := Greedy(sub, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen[0] == 2 {
		t.Fatal("first pick should target the dominant mode")
	}
	if plan.Chosen[1] != 2 {
		t.Fatalf("second pick = candidate %d, want the other-mode candidate (naive would pick the redundant twin)", plan.Chosen[1])
	}
	// Contrast with the naive ranking, which picks the redundant twin.
	naive := RankCandidatesByVariance(sub, cands)
	if naive[1] == 2 {
		t.Fatal("test premise broken: naive ranking should prefer the redundant candidate")
	}
}

func TestGreedyReductionMonotoneAndBounded(t *testing.T) {
	s := rng.New(4)
	a := linalg.NewDense(30, 5)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sub := &core.Subspace{Modes: f.Q, Sigma: []float64{5, 4, 3, 2, 1}}
	var cands []Candidate
	for off := 0; off < 30; off += 2 {
		cands = append(cands, Candidate{Offset: off, Stddev: 0.5})
	}
	plan, err := Greedy(sub, cands, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chosen) != 8 {
		t.Fatalf("chose %d", len(plan.Chosen))
	}
	prev := 0.0
	for i, red := range plan.Reduction {
		if red < prev-1e-12 {
			t.Fatalf("cumulative reduction decreased at pick %d", i)
		}
		prev = red
	}
	if prev > sub.TotalVariance()+1e-9 {
		t.Fatalf("reduction %v exceeds total variance %v", prev, sub.TotalVariance())
	}
	// No duplicate picks.
	seen := map[int]bool{}
	for _, c := range plan.Chosen {
		if seen[c] {
			t.Fatal("candidate picked twice")
		}
		seen[c] = true
	}
}

func TestGreedyValidation(t *testing.T) {
	sub := twoModeSubspace()
	if _, err := Greedy(sub, nil, 3); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := Greedy(sub, []Candidate{{Offset: 0, Stddev: 1}}, 0); err == nil {
		t.Fatal("zero picks accepted")
	}
	if _, err := Greedy(sub, []Candidate{{Offset: 99, Stddev: 1}}, 1); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	if _, err := Greedy(sub, []Candidate{{Offset: 0, Stddev: 0}}, 1); err == nil {
		t.Fatal("zero obs error accepted")
	}
}

func TestExpectedReductionMatchesAssimilation(t *testing.T) {
	// The planner's batch formula must equal the variance actually
	// removed by core.Assimilate with the same network.
	g := grid.New(6, 6, 2, 1, 1, 100)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 2}})
	s := rng.New(7)
	a := linalg.NewDense(l.Dim(), 4)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sub := &core.Subspace{Modes: f.Q, Sigma: []float64{2, 1.5, 1, 0.5}}
	n := obs.NewNetwork(l)
	for i := 0; i < 5; i++ {
		if err := n.Add(obs.Observation{Var: "T", I: i, J: i, K: 0, Stddev: 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	expected, err := ExpectedReduction(sub, n)
	if err != nil {
		t.Fatal(err)
	}
	x := s.NormVec(nil, l.Dim())
	y := n.ApplyH(x) // values irrelevant for variance bookkeeping
	an, err := core.Assimilate(x, sub, n, y)
	if err != nil {
		t.Fatal(err)
	}
	actual := sub.TotalVariance() - an.Posterior.TotalVariance()
	if math.Abs(expected-actual) > 1e-8*(1+actual) {
		t.Fatalf("planner predicts %v, assimilation removed %v", expected, actual)
	}
}

func TestExpectedReductionEmptyNetwork(t *testing.T) {
	g := grid.New(4, 4, 1, 1, 1, 0)
	l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: 1}})
	n := obs.NewNetwork(l)
	sub := twoModeSubspace()
	red, err := ExpectedReduction(sub, n)
	if err != nil || red != 0 {
		t.Fatalf("empty network: red=%v err=%v", red, err)
	}
}

func TestGreedyBeatsNaiveOnCorrelatedField(t *testing.T) {
	// Build a subspace with strong spatial correlation (a few smooth
	// modes); greedy's k picks must reduce at least as much variance as
	// the naive top-k-variance picks.
	s := rng.New(11)
	dim := 40
	a := linalg.NewDense(dim, 3)
	for j := 0; j < 3; j++ {
		for i := 0; i < dim; i++ {
			a.Set(i, j, math.Sin(float64(i*(j+1))*0.2)+0.1*s.Norm())
		}
	}
	f := linalg.QR(a)
	sub := &core.Subspace{Modes: f.Q, Sigma: []float64{4, 2, 1}}
	var cands []Candidate
	for off := 0; off < dim; off++ {
		cands = append(cands, Candidate{Offset: off, Stddev: 0.2})
	}
	const k = 4
	plan, err := Greedy(sub, cands, k)
	if err != nil {
		t.Fatal(err)
	}
	naiveOrder := RankCandidatesByVariance(sub, cands)[:k]

	reduction := func(picks []int) float64 {
		gamma := linalg.NewDense(3, 3)
		for j := 0; j < 3; j++ {
			gamma.Set(j, j, sub.Sigma[j]*sub.Sigma[j])
		}
		before := gamma.Trace()
		gh := make([]float64, 3)
		for _, ci := range picks {
			c := cands[ci]
			applyRankOneUpdate(gamma, sub.Modes.Row(c.Offset), c.Stddev*c.Stddev, gh)
		}
		return before - gamma.Trace()
	}
	if g, n := reduction(plan.Chosen), reduction(naiveOrder); g < n-1e-9 {
		t.Fatalf("greedy reduction %v below naive %v", g, n)
	}
}
