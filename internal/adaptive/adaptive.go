// Package adaptive implements the adaptive-sampling extension the paper
// points to in its future work (Section 7, refs. Heaney et al. 2007, Lam
// et al. 2009, Yilmaz et al. 2008): use the predicted ESSE error
// subspace to decide where to observe next, so the observing system
// (AUV/glider tracks, CTD stations) targets the largest uncertainties.
//
// Planning works entirely in the subspace: with modes E and mode
// covariance Γ (initialized to diag(σ²)), observing state element e with
// error variance r performs the rank-one update
//
//	Γ ← Γ − Γ hᵀ (h Γ hᵀ + r)⁻¹ h Γ,   h = E[e,:]
//
// whose trace decrease is exactly the expected total variance reduction.
// The greedy planner applies this update sequentially, so later picks
// account for the information earlier picks already bought — the reason
// greedy beats "top-k variance" when uncertainties are correlated.
package adaptive

import (
	"fmt"
	"sort"

	"esse/internal/core"
	"esse/internal/linalg"
)

// Candidate is a potential observation of one state element.
type Candidate struct {
	// Offset is the flat index into the (scaled) state vector.
	Offset int
	// Stddev is the observation error in scaled units.
	Stddev float64
	// Label is free-form (e.g. "glider T (4,7) 30m").
	Label string
}

// Plan is the planner's output: chosen candidate indices in pick order
// and the cumulative expected variance reduction after each pick.
type Plan struct {
	Chosen    []int
	Reduction []float64
}

// Greedy selects k candidates by sequential expected-variance-reduction.
// The subspace is not modified. Complexity O(k · |cands| · p²).
func Greedy(sub *core.Subspace, cands []Candidate, k int) (*Plan, error) {
	if k <= 0 {
		return nil, fmt.Errorf("adaptive: non-positive pick count %d", k)
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("adaptive: no candidates")
	}
	if k > len(cands) {
		k = len(cands)
	}
	p := sub.Rank()
	dim := sub.StateDim()
	for i, c := range cands {
		if c.Offset < 0 || c.Offset >= dim {
			return nil, fmt.Errorf("adaptive: candidate %d offset %d outside state dim %d", i, c.Offset, dim)
		}
		if c.Stddev <= 0 {
			return nil, fmt.Errorf("adaptive: candidate %d has non-positive error", i)
		}
	}

	// Γ starts diagonal; rank-one updates make it dense.
	gamma := linalg.NewDense(p, p)
	for j := 0; j < p; j++ {
		gamma.Set(j, j, sub.Sigma[j]*sub.Sigma[j])
	}

	plan := &Plan{}
	used := make(map[int]bool)
	total := 0.0
	gh := make([]float64, p)
	for pick := 0; pick < k; pick++ {
		bestIdx, bestGain := -1, -1.0
		for ci, c := range cands {
			if used[ci] {
				continue
			}
			h := sub.Modes.Row(c.Offset)
			gain := varianceGain(gamma, h, c.Stddev*c.Stddev, gh)
			if gain > bestGain {
				bestGain = gain
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		c := cands[bestIdx]
		applyRankOneUpdate(gamma, sub.Modes.Row(c.Offset), c.Stddev*c.Stddev, gh)
		total += bestGain
		plan.Chosen = append(plan.Chosen, bestIdx)
		plan.Reduction = append(plan.Reduction, total)
	}
	return plan, nil
}

// varianceGain computes tr(Γ hᵀ (h Γ hᵀ + r)⁻¹ h Γ) = ‖Γh‖² / (hΓhᵀ + r).
func varianceGain(gamma *linalg.Dense, h []float64, r float64, gh []float64) float64 {
	p := gamma.Rows
	// gh = Γ h  (Γ symmetric).
	for i := 0; i < p; i++ {
		gh[i] = linalg.Dot(gamma.Row(i), h)
	}
	hgh := linalg.Dot(h, gh)
	den := hgh + r
	if den <= 0 {
		return 0
	}
	num := 0.0
	for _, v := range gh {
		num += v * v
	}
	return num / den
}

// applyRankOneUpdate performs Γ ← Γ − (Γh)(Γh)ᵀ/(hΓhᵀ + r) in place.
func applyRankOneUpdate(gamma *linalg.Dense, h []float64, r float64, gh []float64) {
	p := gamma.Rows
	for i := 0; i < p; i++ {
		gh[i] = linalg.Dot(gamma.Row(i), h)
	}
	den := linalg.Dot(h, gh) + r
	if den <= 0 {
		return
	}
	for i := 0; i < p; i++ {
		gi := gh[i] / den
		row := gamma.Row(i)
		for j := 0; j < p; j++ {
			row[j] -= gi * gh[j]
		}
	}
}

// ExpectedReduction evaluates a whole candidate observation batch at
// once: the exact expected total-variance reduction
// tr(Γ HEᵀ (HE Γ HEᵀ + R)⁻¹ HE Γ) for the batch, matching what
// core.Assimilate will deliver on average.
func ExpectedReduction(sub *core.Subspace, network core.ObsOperator) (float64, error) {
	p := sub.Rank()
	m := network.Len()
	if m == 0 {
		return 0, nil
	}
	he := network.ApplyHMat(sub.Modes) // m×p
	rDiag := network.RDiag()
	heg := linalg.NewDense(m, p) // HE Γ
	for i := 0; i < m; i++ {
		row := he.Row(i)
		out := heg.Row(i)
		for j := 0; j < p; j++ {
			out[j] = row[j] * sub.Sigma[j] * sub.Sigma[j]
		}
	}
	s := linalg.MulBT(heg, he)
	for i := 0; i < m; i++ {
		s.Set(i, i, s.At(i, i)+rDiag[i])
	}
	sInv, ok := linalg.InvertSPD(s)
	if !ok {
		return 0, fmt.Errorf("adaptive: singular innovation covariance")
	}
	// tr(Γ HEᵀ S⁻¹ HE Γ) = tr(S⁻¹ · (HE Γ)(HE Γ)ᵀ... ) — compute as
	// tr(S⁻¹ · HEΓ²HEᵀ)? Careful: reduction = tr(ΓHEᵀ S⁻¹ HE Γ)
	// = sum over modes of [HEΓ]ᵀ S⁻¹ [HEΓ] diagonal.
	red := 0.0
	col := make([]float64, m)
	for j := 0; j < p; j++ {
		heg.Col(col, j)
		sc := linalg.MatVec(sInv, col)
		red += linalg.Dot(col, sc)
	}
	return red, nil
}

// RankCandidatesByVariance is the naive baseline: sort candidates by
// prior marginal variance (descending), ignoring correlations. Used by
// tests and benchmarks to show what sequential greedy buys.
func RankCandidatesByVariance(sub *core.Subspace, cands []Candidate) []int {
	type scored struct {
		idx int
		v   float64
	}
	list := make([]scored, len(cands))
	for i, c := range cands {
		row := sub.Modes.Row(c.Offset)
		v := 0.0
		for j, e := range row {
			v += e * e * sub.Sigma[j] * sub.Sigma[j]
		}
		list[i] = scored{idx: i, v: v}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].v > list[b].v })
	out := make([]int, len(list))
	for i, s := range list {
		out[i] = s.idx
	}
	return out
}
