// Package opendap implements the remote-data-access path of the paper's
// Section 5.3.2: "As a minimum requirement the shared input files can be
// read remotely from OpenDAP servers at the home institution (using the
// NetCDF-OpenDAP library) allowing the immediate opportunistic use of a
// remote resource that is discovered to be idling."
//
// Server publishes ncdf datasets over HTTP with a DAP-like surface:
//
//	GET /datasets                                  — list dataset names
//	GET /dds/{name}                                — structure descriptor
//	GET /dods/{name}?var=T&start=0,0,0&count=1,4,4 — binary hyperslab
//
// Client fetches structure and hyperslabs; the binary payload carries a
// length header and a CRC so a truncated response is detected rather
// than silently assimilated. The server counts requests and bytes so
// experiments can quantify the "hundreds of requests to a central
// OpenDAP server" concern the paper raises.
package opendap

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"esse/internal/ncdf"
	"esse/internal/telemetry"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Server publishes a set of named datasets.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*ncdf.File

	// stats
	requests int64
	bytes    int64

	// telemetry handles (nil no-ops unless Instrument is called)
	tel    *telemetry.Telemetry
	cList  *telemetry.Counter
	cDDS   *telemetry.Counter
	cDODS  *telemetry.Counter
	cBytes *telemetry.Counter
}

// Instrument registers the server's metrics in tel and arms the trace
// middleware Handler wraps around each route. Call it before Handler;
// a nil tel is a no-op.
func (s *Server) Instrument(tel *telemetry.Telemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = tel
	s.cList = tel.Counter("esse_opendap_requests_total", "OpenDAP requests by endpoint.", "endpoint", "datasets")
	s.cDDS = tel.Counter("esse_opendap_requests_total", "OpenDAP requests by endpoint.", "endpoint", "dds")
	s.cDODS = tel.Counter("esse_opendap_requests_total", "OpenDAP requests by endpoint.", "endpoint", "dods")
	s.cBytes = tel.Counter("esse_opendap_bytes_total", "Payload bytes served.")
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{datasets: make(map[string]*ncdf.File)}
}

// Publish registers (or replaces) a dataset under the given name.
func (s *Server) Publish(name string, f *ncdf.File) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = f
}

// Stats returns the request count and payload bytes served so far.
func (s *Server) Stats() (requests, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.requests, s.bytes
}

// Handler returns the HTTP handler implementing the protocol. When the
// server is instrumented, every route runs behind the telemetry trace
// middleware: an inbound traceparent header (the Client injects one)
// parents the server span under the remote caller, so one causal tree
// spans both processes. Uninstrumented, the routes are served bare.
func (s *Server) Handler() http.Handler {
	s.mu.RLock()
	tel := s.tel
	s.mu.RUnlock()
	mux := http.NewServeMux()
	mux.Handle("/datasets", tel.Instrument("opendap-datasets", http.HandlerFunc(s.handleList)))
	mux.Handle("/dds/", tel.Instrument("opendap-dds", http.HandlerFunc(s.handleDDS)))
	mux.Handle("/dods/", tel.Instrument("opendap-dods", http.HandlerFunc(s.handleDODS)))
	return mux
}

func (s *Server) count(n int64) {
	// The counter pointer is snapshotted under the lock (Instrument
	// writes it under mu) and bumped outside it: the nil counter is a
	// no-op, and Add is atomic.
	s.mu.Lock()
	s.requests++
	s.bytes += n
	cBytes := s.cBytes
	s.mu.Unlock()
	cBytes.Add(uint64(n))
}

func (s *Server) get(name string) (*ncdf.File, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.datasets[name]
	return f, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cList := s.cList
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	s.mu.RUnlock()
	cList.Inc()
	sort.Strings(names)
	body := strings.Join(names, "\n") + "\n"
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, body) //esselint:allow errdrop a failed write means the client went away
	s.count(int64(len(body)))
}

func (s *Server) handleDDS(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cDDS := s.cDDS
	s.mu.RUnlock()
	cDDS.Inc()
	name := strings.TrimPrefix(r.URL.Path, "/dds/")
	f, ok := s.get(name)
	if !ok {
		http.Error(w, "unknown dataset "+name, http.StatusNotFound)
		return
	}
	body := f.DDS(name)
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, body) //esselint:allow errdrop a failed write means the client went away
	s.count(int64(len(body)))
}

func (s *Server) handleDODS(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cDODS := s.cDODS
	s.mu.RUnlock()
	cDODS.Inc()
	name := strings.TrimPrefix(r.URL.Path, "/dods/")
	f, ok := s.get(name)
	if !ok {
		http.Error(w, "unknown dataset "+name, http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	varName := q.Get("var")
	v, ok := f.Var(varName)
	if !ok {
		http.Error(w, "unknown variable "+varName, http.StatusNotFound)
		return
	}
	shape := f.Shape(v)
	start, err := parseIntList(q.Get("start"), len(shape), 0)
	if err != nil {
		http.Error(w, "bad start: "+err.Error(), http.StatusBadRequest)
		return
	}
	count, err := parseIntList(q.Get("count"), len(shape), -1)
	if err != nil {
		http.Error(w, "bad count: "+err.Error(), http.StatusBadRequest)
		return
	}
	for i := range count {
		if count[i] < 0 { // default: to the end of the axis
			count[i] = shape[i] - start[i]
		}
	}
	data, err := f.HyperSlab(v, start, count)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Payload: int64 length, float64 data, crc64.
	w.Header().Set("Content-Type", "application/octet-stream")
	h := crc64.New(crcTable)
	mw := io.MultiWriter(w, h)
	binary.Write(mw, binary.LittleEndian, int64(len(data))) //esselint:allow errdrop a failed write means the client went away
	binary.Write(mw, binary.LittleEndian, data)             //esselint:allow errdrop a failed write means the client went away
	binary.Write(w, binary.LittleEndian, h.Sum64())         //esselint:allow errdrop a failed write means the client went away
	s.count(int64(8 + 8*len(data) + 8))
}

func parseIntList(s string, rank, def int) ([]int, error) {
	out := make([]int, rank)
	for i := range out {
		out[i] = def
	}
	if s == "" {
		if def < 0 {
			return out, nil
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != rank {
		return nil, fmt.Errorf("got %d components, variable rank is %d", len(parts), rank)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// --- client -----------------------------------------------------------------

// Client talks to a Server over HTTP. Its Ctx request variants open
// client spans and inject the traceparent header, so a fetch issued
// from inside a forecast cycle shows up in the server's trace parented
// under that cycle.
type Client struct {
	Base string // e.g. "http://host:port"
	HTTP *http.Client

	tel *telemetry.Telemetry
}

// Instrument enables client-side spans on the Ctx request variants.
// Call it before the client is shared; a nil tel is a no-op (the
// traceparent header is still injected when ctx carries a span).
func (c *Client) Instrument(tel *telemetry.Telemetry) {
	c.tel = tel
}

// NewClient returns a client for the given base URL. The client is
// bounded: a data server that accepts the connection and then stalls
// (a remote execution host mid-restart, say) fails the fetch after
// clientTimeout instead of hanging the forecast pipeline. Callers
// needing different bounds can replace HTTP.
func NewClient(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: clientTimeout},
	}
}

// clientTimeout caps one whole request/response exchange, including
// reading the body. Hyperslab payloads are tens of MB at worst, so a
// minute is generous on any link the paper's setting cares about.
const clientTimeout = 60 * time.Second

// get issues one GET with the active span (if any) injected as a
// traceparent header, so the server can parent its span under ours.
func (c *Client) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("opendap: %w", err)
	}
	telemetry.Inject(req.Header, telemetry.SpanFromContext(ctx).Context())
	return c.HTTP.Do(req)
}

// Datasets lists the server's dataset names.
func (c *Client) Datasets() ([]string, error) {
	return c.DatasetsCtx(context.Background())
}

// DatasetsCtx is Datasets under a context: the request is cancellable,
// runs inside a client span, and propagates trace context.
func (c *Client) DatasetsCtx(ctx context.Context) ([]string, error) {
	ctx, sp := c.tel.SpanCtx(ctx, "opendap", "datasets", -1, -1)
	defer sp.End()
	resp, err := c.get(ctx, c.Base+"/datasets")
	if err != nil {
		return nil, fmt.Errorf("opendap: %w", err)
	}
	defer resp.Body.Close() //esselint:allow errdrop read-only response body
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("opendap: listing failed: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("opendap: %w", err)
	}
	var names []string
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			names = append(names, line)
		}
	}
	return names, nil
}

// DDS fetches the structure descriptor of a dataset.
func (c *Client) DDS(dataset string) (string, error) {
	return c.DDSCtx(context.Background(), dataset)
}

// DDSCtx is DDS under a context with span + trace propagation.
func (c *Client) DDSCtx(ctx context.Context, dataset string) (string, error) {
	ctx, sp := c.tel.SpanCtx(ctx, "opendap", "dds", -1, -1)
	defer sp.End()
	resp, err := c.get(ctx, c.Base+"/dds/"+dataset)
	if err != nil {
		return "", fmt.Errorf("opendap: %w", err)
	}
	defer resp.Body.Close() //esselint:allow errdrop read-only response body
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("opendap: DDS failed: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("opendap: %w", err)
	}
	return string(body), nil
}

// Fetch retrieves a hyperslab of a variable. Pass nil start/count for
// the full array.
func (c *Client) Fetch(dataset, variable string, start, count []int) ([]float64, error) {
	return c.FetchCtx(context.Background(), dataset, variable, start, count)
}

// FetchCtx is Fetch under a context with span + trace propagation.
func (c *Client) FetchCtx(ctx context.Context, dataset, variable string, start, count []int) ([]float64, error) {
	ctx, sp := c.tel.SpanCtx(ctx, "opendap", "fetch", -1, -1)
	defer sp.End()
	url := fmt.Sprintf("%s/dods/%s?var=%s", c.Base, dataset, variable)
	if len(start) > 0 {
		url += "&start=" + joinInts(start)
	}
	if len(count) > 0 {
		url += "&count=" + joinInts(count)
	}
	resp, err := c.get(ctx, url)
	if err != nil {
		return nil, fmt.Errorf("opendap: %w", err)
	}
	defer resp.Body.Close() //esselint:allow errdrop read-only response body
	if resp.StatusCode != http.StatusOK {
		//esselint:allow errdrop best-effort capture of the server's error text
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("opendap: fetch failed: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var n int64
	h := crc64.New(crcTable)
	tr := io.TeeReader(resp.Body, h)
	if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("opendap: %w", err)
	}
	if n < 0 || n > 1<<32 {
		return nil, fmt.Errorf("opendap: implausible payload length %d", n)
	}
	data := make([]float64, n)
	if err := binary.Read(tr, binary.LittleEndian, data); err != nil {
		return nil, fmt.Errorf("opendap: truncated payload: %w", err)
	}
	want := h.Sum64()
	var sum uint64
	if err := binary.Read(resp.Body, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("opendap: missing checksum: %w", err)
	}
	if sum != want {
		return nil, fmt.Errorf("opendap: checksum mismatch")
	}
	return data, nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, v := range xs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
