package opendap

import (
	"encoding/binary"
	"hash/crc64"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// errServer serves whatever handler a test installs, returning a
// client pointed at it.
func errServer(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

func TestFetchNon200CarriesServerText(t *testing.T) {
	c := errServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "dataset is being republished", http.StatusServiceUnavailable)
	})
	_, err := c.Fetch("forecast-000", "T", nil, nil)
	if err == nil {
		t.Fatal("non-200 fetch accepted")
	}
	if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error does not name the status: %v", err)
	}
	if !strings.Contains(err.Error(), "dataset is being republished") {
		t.Fatalf("error dropped the server's explanation: %v", err)
	}
}

func TestDatasetsNon200(t *testing.T) {
	c := errServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	if _, err := c.Datasets(); err == nil {
		t.Fatal("non-200 listing accepted")
	}
}

// payload builds a wire-correct /dods body: length header, values, CRC.
func payload(values []float64) []byte {
	var b []byte
	h := crc64.New(crcTable)
	le := binary.LittleEndian
	b = le.AppendUint64(b, uint64(len(values)))
	for _, v := range values {
		b = le.AppendUint64(b, math.Float64bits(v))
	}
	_, _ = h.Write(b)
	return le.AppendUint64(b, h.Sum64())
}

func TestFetchTruncatedPayload(t *testing.T) {
	full := payload([]float64{1, 2, 3, 4})
	cases := []struct {
		name string
		cut  int // bytes to drop from the tail
	}{
		{"missing checksum", 8},
		{"mid value", 8 + 12},
		{"header only", len(full) - 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := errServer(t, func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write(full[:len(full)-tc.cut])
			})
			if _, err := c.Fetch("d", "T", nil, nil); err == nil {
				t.Fatal("truncated payload accepted")
			}
		})
	}
}

func TestFetchCorruptPayload(t *testing.T) {
	full := payload([]float64{1, 2, 3, 4})
	flipped := append([]byte(nil), full...)
	flipped[10] ^= 0xff // damage a value byte, leave length + CRC in place
	c := errServer(t, func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(flipped)
	})
	_, err := c.Fetch("d", "T", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload not caught by checksum: %v", err)
	}
}

func TestFetchImplausibleLength(t *testing.T) {
	c := errServer(t, func(w http.ResponseWriter, r *http.Request) {
		var b []byte
		b = binary.LittleEndian.AppendUint64(b, 1<<40) // claims 8 TiB of floats
		_, _ = w.Write(b)
	})
	_, err := c.Fetch("d", "T", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible length header accepted: %v", err)
	}
}

// TestFetchHungServer proves the client's Timeout bounds a server that
// accepts the request and then stalls mid-body: the paper's remote
// execution host must fail over, not hang the forecast deadline away.
func TestFetchHungServer(t *testing.T) {
	release := make(chan struct{})
	c := errServer(t, func(w http.ResponseWriter, r *http.Request) {
		var b []byte
		b = binary.LittleEndian.AppendUint64(b, 4) // promise 4 values...
		_, _ = w.Write(b)
		w.(http.Flusher).Flush()
		<-release // ...and never deliver them
	})
	defer close(release)
	c.HTTP = &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := c.Fetch("d", "T", nil, nil)
	if err == nil {
		t.Fatal("hung server did not error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client hung %v despite 100ms timeout", elapsed)
	}
}

func TestNewClientIsBounded(t *testing.T) {
	c := NewClient("http://example.invalid/")
	if c.HTTP == nil || c.HTTP.Timeout <= 0 {
		t.Fatal("NewClient returned an unbounded HTTP client")
	}
	if c.HTTP == http.DefaultClient {
		t.Fatal("NewClient shares http.DefaultClient; a global timeout change would leak across users")
	}
}
