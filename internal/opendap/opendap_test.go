package opendap

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"esse/internal/grid"
	"esse/internal/ncdf"
	"esse/internal/ocean"
	"esse/internal/rng"
)

func testServer(t *testing.T) (*Server, *Client, *ocean.Model) {
	t.Helper()
	g := grid.MontereyBay(8, 8, 3)
	m := ocean.New(ocean.DefaultConfig(g), rng.New(1))
	m.Run(3)
	f, err := ncdf.FromState(m.Layout, m.State(nil), map[string]string{"kind": "ic"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.Publish("initial-conditions", f)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL), m
}

func TestDatasetListing(t *testing.T) {
	srv, c, _ := testServer(t)
	srv.Publish("another", ncdf.New())
	names, err := c.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "another" || names[1] != "initial-conditions" {
		t.Fatalf("datasets = %v", names)
	}
}

func TestDDSRoundTrip(t *testing.T) {
	_, c, _ := testServer(t)
	dds, err := c.DDS("initial-conditions")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Float64 T[lev = 3][lat = 8][lon = 8];", "Float64 eta[lat = 8][lon = 8];"} {
		if !strings.Contains(dds, want) {
			t.Fatalf("DDS missing %q:\n%s", want, dds)
		}
	}
}

func TestDDSUnknownDataset(t *testing.T) {
	_, c, _ := testServer(t)
	if _, err := c.DDS("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestFetchFullVariable(t *testing.T) {
	_, c, m := testServer(t)
	got, err := c.Fetch("initial-conditions", "T", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Layout.SliceByName(m.State(nil), "T")
	if len(got) != len(want) {
		t.Fatalf("fetched %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("T[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFetchHyperslab(t *testing.T) {
	_, c, m := testServer(t)
	// Surface level only.
	got, err := c.Fetch("initial-conditions", "T", []int{0, 0, 0}, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := m.Layout.Level(m.State(nil), m.Layout.VarIndex("T"), 0)
	if len(got) != 64 {
		t.Fatalf("slab size %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("surface slab mismatch")
		}
	}
}

func TestFetchErrors(t *testing.T) {
	_, c, _ := testServer(t)
	if _, err := c.Fetch("initial-conditions", "ghost", nil, nil); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := c.Fetch("ghost", "T", nil, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := c.Fetch("initial-conditions", "T", []int{0, 0, 0}, []int{99, 1, 1}); err == nil {
		t.Fatal("oversized slab accepted")
	}
	if _, err := c.Fetch("initial-conditions", "T", []int{0, 0}, nil); err == nil {
		t.Fatal("wrong-rank start accepted")
	}
}

func TestServerStatsCountRequests(t *testing.T) {
	srv, c, _ := testServer(t)
	for i := 0; i < 5; i++ {
		if _, err := c.Fetch("initial-conditions", "eta", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	reqs, bytes := srv.Stats()
	if reqs != 5 {
		t.Fatalf("requests = %d", reqs)
	}
	// 5 × (8 + 64*8 + 8) bytes of payload.
	if bytes != 5*(8+64*8+8) {
		t.Fatalf("bytes = %d", bytes)
	}
}

func TestConcurrentFetches(t *testing.T) {
	// The paper's concern: "hundreds of requests to a central OpenDAP
	// server". The server must stay consistent under concurrency.
	srv, c, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Fetch("initial-conditions", "T", nil, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	reqs, _ := srv.Stats()
	if reqs != 100 {
		t.Fatalf("requests = %d", reqs)
	}
}

func TestPublishReplaces(t *testing.T) {
	srv, c, _ := testServer(t)
	f := ncdf.New()
	_ = f.AddDim("x", 2)
	_ = f.AddVar("eta", []string{"x"}, nil, []float64{42, 43})
	srv.Publish("initial-conditions", f)
	got, err := c.Fetch("initial-conditions", "eta", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 42 {
		t.Fatalf("replacement not visible: %v", got)
	}
}
