// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns both machine-readable results and
// a formatted text block whose rows mirror what the paper reports; the
// benchmark harness (bench_test.go at the repository root) and the
// cmd/repro binary both drive these entry points.
//
// Index (see DESIGN.md for the full mapping):
//
//	Fig1  — forecasting timelines            → Fig1Timelines
//	Fig2  — the ESSE algorithm (one cycle)   → Fig2ESSECycle
//	Fig3  — serial ESSE implementation       → Fig3Fig4Comparison
//	Fig4  — parallel ESSE implementation     → Fig3Fig4Comparison
//	Tab1  — pert/pemodel on TeraGrid hosts   → Table1
//	Tab2  — pert/pemodel on EC2 instances    → Table2
//	§5.2.1 local-cluster timings             → LocalTimings
//	§5.4.2 EC2 cost worked example           → CostExample
//	Fig5  — SST uncertainty map              → Fig5Fig6Uncertainty
//	Fig6  — 30 m temperature uncertainty map → Fig5Fig6Uncertainty
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"esse/internal/cluster"
	"esse/internal/core"
	"esse/internal/metrics"
	"esse/internal/realtime"
	"esse/internal/remote"
	"esse/internal/sched"
	"esse/internal/trace"
	"esse/internal/workflow"
)

// ---------------------------------------------------------------------------
// Table 1

// Table1Row is one site entry.
type Table1Row struct {
	Site, Processor string
	Pert, Model     float64
}

// Table1 evaluates the TeraGrid site catalog against the reference ESSE
// job, reproducing the paper's Table 1.
func Table1() ([]Table1Row, string) {
	spec := sched.ESSEJob()
	var rows []Table1Row
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: pert/pemodel time-to-completion (s) on TeraGrid platforms\n")
	fmt.Fprintf(&b, "%-8s %-22s %9s %9s\n", "site", "processor type", "pert", "pemodel")
	for _, s := range remote.TeragridSites() {
		r := Table1Row{Site: s.Name, Processor: s.Processor, Pert: s.PertTime(spec), Model: s.ModelTime(spec)}
		rows = append(rows, r)
		fmt.Fprintf(&b, "%-8s %-22s %9.2f %9.2f\n", r.Site, r.Processor, r.Pert, r.Model)
	}
	return rows, b.String()
}

// ---------------------------------------------------------------------------
// Table 2

// Table2Row is one instance-type entry.
type Table2Row struct {
	Instance, Processor string
	Pert, Model         float64
	Cores               float64
}

// Table2 evaluates the EC2 instance catalog, reproducing Table 2.
func Table2() ([]Table2Row, string) {
	spec := sched.ESSEJob()
	var rows []Table2Row
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: pert/pemodel time-to-completion (s) on EC2 instance types\n")
	fmt.Fprintf(&b, "%-10s %-16s %9s %9s %6s\n", "site", "processor type", "pert", "pemodel", "cores")
	for _, it := range remote.EC2Instances() {
		r := Table2Row{Instance: it.Name, Processor: it.Processor,
			Pert: it.PertTime(spec), Model: it.ModelTime(spec), Cores: it.Cores}
		rows = append(rows, r)
		fmt.Fprintf(&b, "%-10s %-16s %9.2f %9.2f %6g\n", r.Instance, r.Processor, r.Pert, r.Model, r.Cores)
	}
	return rows, b.String()
}

// ---------------------------------------------------------------------------
// §5.2.1 local-cluster timings

// TimingsResult carries the four §5.2.1 measurements.
type TimingsResult struct {
	LocalSGE      *sched.Result // all-local I/O under SGE
	MixedSGE      *sched.Result // mixed NFS I/O under SGE
	LocalCondor   *sched.Result // all-local I/O under Condor
	Acoustics     *sched.Result // the 6000-job acoustics ensemble
	Members, Jobs int
}

// LocalTimings runs the calibrated cluster DES for the paper's 600-member
// ensemble on ~210 cores under the SGE/Condor and local/NFS variants,
// plus the 6000-job acoustics follow-up.
func LocalTimings(members, acousticJobs, cores int, seed uint64) (*TimingsResult, string) {
	c := cluster.MITAvailable(cores)
	base := sched.DefaultConfig()
	base.Seed = seed

	localSGE := base
	mixedSGE := base
	mixedSGE.IOMode = sched.MixedNFS
	localCondor := base
	localCondor.Policy = sched.Condor
	acoustic := base
	acoustic.IOMode = sched.MixedNFS
	acoustic.PrestageMB = 0

	res := &TimingsResult{
		LocalSGE:    sched.Simulate(c, members, sched.ESSEJob(), localSGE),
		MixedSGE:    sched.Simulate(c, members, sched.ESSEJob(), mixedSGE),
		LocalCondor: sched.Simulate(c, members, sched.ESSEJob(), localCondor),
		Acoustics:   sched.Simulate(c, acousticJobs, sched.AcousticJob(), acoustic),
		Members:     members,
		Jobs:        acousticJobs,
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Local-cluster timings (%d ESSE members, %d cores):\n", members, cores)
	fmt.Fprintf(&b, "  %-28s %8.1f min (pert CPU util %3.0f%%)\n",
		"SGE, all-local I/O:", res.LocalSGE.Makespan/60, res.LocalSGE.PertCPUUtilization*100)
	fmt.Fprintf(&b, "  %-28s %8.1f min (pert CPU util %3.0f%%)\n",
		"SGE, mixed NFS I/O:", res.MixedSGE.Makespan/60, res.MixedSGE.PertCPUUtilization*100)
	fmt.Fprintf(&b, "  %-28s %8.1f min (+%0.0f%% vs SGE)\n",
		"Condor, all-local I/O:", res.LocalCondor.Makespan/60,
		(res.LocalCondor.Makespan/res.LocalSGE.Makespan-1)*100)
	fmt.Fprintf(&b, "  %-28s %8.1f min (%d jobs, ~3 min each)\n",
		"Acoustics ensemble:", res.Acoustics.Makespan/60, acousticJobs)
	fmt.Fprintf(&b, "  paper: ~77 min all-local, ~86 min mixed, Condor 10-20%% slower,\n")
	fmt.Fprintf(&b, "         pert CPU utilization 20%% -> 100%% with prestaging\n")
	return res, b.String()
}

// ---------------------------------------------------------------------------
// §5.4.2 EC2 cost example

// CostExample reproduces the worked EC2 pricing example.
func CostExample() (remote.CostBreakdown, string) {
	b := remote.PaperCostExample()
	cm := remote.DefaultCostModel()
	it, _ := remote.FindInstance("c1.xlarge")
	reserved := cm.Cost(1.5, 10.56, 2, 20, it, true)
	var s strings.Builder
	fmt.Fprintf(&s, "EC2 cost example (1.5 GB in, 960 members x 11 MB out, 2 h x 20 c1.xlarge):\n")
	fmt.Fprintf(&s, "  transfer in : $%6.2f\n", b.TransferInUSD)
	fmt.Fprintf(&s, "  transfer out: $%6.2f\n", b.TransferOutUSD)
	fmt.Fprintf(&s, "  compute     : $%6.2f (%.0f billed instance-hours)\n", b.ComputeUSD, b.BilledHours)
	fmt.Fprintf(&s, "  TOTAL       : $%6.2f   (paper: $33.95)\n", b.TotalUSD)
	fmt.Fprintf(&s, "  with reserved instances: $%6.2f total ($%.2f compute)\n",
		reserved.TotalUSD, reserved.ComputeUSD)
	return b, s.String()
}

// ---------------------------------------------------------------------------
// Fig. 1 — the three forecasting timelines

// Fig1Timelines runs a small real-time twin experiment and renders the
// observation/forecaster/simulation timelines.
func Fig1Timelines(cfg realtime.Config) (*trace.Timeline, string, error) {
	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		return nil, "", err
	}
	if _, err := sys.Run(context.Background()); err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: forecasting timelines (%d cycles)\n", cfg.Cycles)
	b.WriteString(sys.Tl.Render(64))
	return sys.Tl, b.String(), nil
}

// ---------------------------------------------------------------------------
// Fig. 2 — one full ESSE cycle

// Fig2Result summarizes one ESSE uncertainty-prediction + assimilation
// cycle.
type Fig2Result struct {
	Cycle *realtime.CycleResult
	Rank  int
}

// Fig2ESSECycle executes the Fig. 2 pipeline once on the ocean model.
func Fig2ESSECycle(cfg realtime.Config) (*Fig2Result, string, error) {
	cfg.Cycles = 1
	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		return nil, "", err
	}
	cr, err := sys.RunCycle(context.Background())
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: one ESSE cycle (perturb -> ensemble -> SVD -> converge -> assimilate)\n")
	fmt.Fprintf(&b, "  members used      : %d (failed %d, cancelled %d)\n",
		cr.Ensemble.MembersUsed, cr.Ensemble.MembersFailed, cr.Ensemble.MembersCancelled)
	fmt.Fprintf(&b, "  SVD rounds        : %d\n", cr.Ensemble.SVDRounds)
	fmt.Fprintf(&b, "  converged         : %v (rho = %.4f)\n", cr.Ensemble.Converged, cr.Ensemble.Rho)
	fmt.Fprintf(&b, "  subspace rank     : %d\n", cr.Ensemble.Subspace.Rank())
	fmt.Fprintf(&b, "  T RMSE forecast   : %.4f degC\n", cr.RMSEForecastT)
	fmt.Fprintf(&b, "  T RMSE analysis   : %.4f degC\n", cr.RMSEAnalysisT)
	fmt.Fprintf(&b, "  innovation/residual: %.3f -> %.3f\n", cr.InnovationNorm, cr.ResidualNorm)
	return &Fig2Result{Cycle: cr, Rank: cr.Ensemble.Subspace.Rank()}, b.String(), nil
}

// ---------------------------------------------------------------------------
// Figs. 3 & 4 — serial vs parallel workflow

// Fig34Result compares the serial and parallel engines on one workload.
type Fig34Result struct {
	Serial, Parallel *workflow.Result
	Speedup          float64
	SubspaceAgree    float64 // similarity coefficient between the results
}

// Fig3Fig4Comparison runs the identical ensemble workload through the
// Fig. 3 serial engine and the Fig. 4 MTC pool and compares wall-clock
// and results. The member runner sleeps `memberDelay` to emulate the
// forecast cost so the exposed parallelism is measurable.
func Fig3Fig4Comparison(members, workers int, memberDelay time.Duration, stateDim int, seed uint64) (*Fig34Result, string, error) {
	truth := toySubspaceForBench(seed, stateDim, 3)
	cfg := workflow.DefaultConfig()
	cfg.InitialSize = members
	cfg.MaxSize = members
	cfg.Workers = workers
	cfg.SVDBatch = members / 4
	if cfg.SVDBatch < 1 {
		cfg.SVDBatch = 1
	}
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2} // fixed workload
	runner := delayedToyRunner(truth, seed+1, memberDelay)
	central := make([]float64, stateDim)

	ser, err := workflow.RunSerial(context.Background(), cfg, central, runner)
	if err != nil {
		return nil, "", err
	}
	par, err := workflow.RunParallel(context.Background(), cfg, central, runner)
	if err != nil {
		return nil, "", err
	}
	res := &Fig34Result{
		Serial:        ser,
		Parallel:      par,
		Speedup:       float64(ser.Elapsed) / float64(par.Elapsed),
		SubspaceAgree: core.SimilarityCoefficient(par.Subspace, ser.Subspace),
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figs 3/4: serial vs parallel (MTC) ESSE, %d members, %d workers\n", members, workers)
	fmt.Fprintf(&b, "  serial (Fig 3)  : %8.1f ms, overlap=%v\n",
		float64(ser.Elapsed.Microseconds())/1000, ser.Timeline.Overlap(trace.SimulationTime))
	fmt.Fprintf(&b, "  parallel (Fig 4): %8.1f ms, overlap=%v\n",
		float64(par.Elapsed.Microseconds())/1000, par.Timeline.Overlap(trace.SimulationTime))
	fmt.Fprintf(&b, "  speedup         : %.2fx (workers=%d)\n", res.Speedup, workers)
	fmt.Fprintf(&b, "  subspace match  : rho = %.6f (identical member set)\n", res.SubspaceAgree)
	return res, b.String(), nil
}

// ---------------------------------------------------------------------------
// Figs. 5 & 6 — uncertainty forecast maps

// Fig56Result carries the two uncertainty fields.
type Fig56Result struct {
	SST     []float64 // surface temperature std-dev (Fig. 5)
	Deep    []float64 // ~30 m temperature std-dev (Fig. 6)
	NX, NY  int
	Cycles  []*realtime.CycleResult
	DeepLvl int
}

// Fig5Fig6Uncertainty runs the AOSN-II-style twin experiment and extracts
// the SST and subsurface temperature uncertainty maps.
func Fig5Fig6Uncertainty(cfg realtime.Config) (*Fig56Result, string, error) {
	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		return nil, "", err
	}
	cycles, err := sys.Run(context.Background())
	if err != nil {
		return nil, "", err
	}
	sst, err := sys.UncertaintyField("T", 0)
	if err != nil {
		return nil, "", err
	}
	lvl := sys.LevelNearestDepth(30)
	deep, err := sys.UncertaintyField("T", lvl)
	if err != nil {
		return nil, "", err
	}
	res := &Fig56Result{SST: sst, Deep: deep, NX: cfg.NX, NY: cfg.NY, Cycles: cycles, DeepLvl: lvl}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: ESSE uncertainty forecast for sea-surface temperature (degC std-dev)\n")
	b.WriteString(metrics.RenderASCII(sst, cfg.NX, cfg.NY))
	fmt.Fprintf(&b, "\nFig 6: ESSE uncertainty forecast for ~30 m temperature (degC std-dev, level %d)\n", lvl)
	b.WriteString(metrics.RenderASCII(deep, cfg.NX, cfg.NY))
	fmt.Fprintf(&b, "\nforecast/analysis T RMSE by cycle:\n")
	for _, c := range cycles {
		fmt.Fprintf(&b, "  cycle %d: %.4f -> %.4f (members %d, rho %.3f)\n",
			c.Cycle, c.RMSEForecastT, c.RMSEAnalysisT, c.Ensemble.MembersUsed, c.Ensemble.Rho)
	}
	return res, b.String(), nil
}
