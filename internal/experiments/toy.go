package experiments

import (
	"context"
	"time"

	"esse/internal/core"
	"esse/internal/linalg"
	"esse/internal/rng"
	"esse/internal/workflow"
)

// toySubspaceForBench builds a fixed orthonormal "true" error subspace
// used by the serial-vs-parallel comparison, where the point is the
// workflow mechanics rather than ocean physics.
func toySubspaceForBench(seed uint64, dim, p int) *core.Subspace {
	s := rng.New(seed)
	a := linalg.NewDense(dim, p)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sigma := make([]float64, p)
	for i := range sigma {
		sigma[i] = float64(p - i)
	}
	return &core.Subspace{Modes: f.Q, Sigma: sigma}
}

// delayedToyRunner draws members from the true subspace after an
// emulated forecast delay. Member results depend only on the index, so
// serial and parallel engines produce identical member sets.
func delayedToyRunner(truth *core.Subspace, seed uint64, delay time.Duration) workflow.MemberRunner {
	master := rng.New(seed)
	return func(ctx context.Context, index int) ([]float64, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		st := master.Split(uint64(index))
		return truth.Perturb(nil, st, 0.01), nil
	}
}
