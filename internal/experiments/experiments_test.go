package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"esse/internal/core"
	"esse/internal/realtime"
)

func smallRealtimeConfig() realtime.Config {
	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 10, 10, 3
	cfg.Cycles = 2
	cfg.StepsPerCycle = 8
	cfg.SnapshotCount = 6
	cfg.SnapshotStride = 4
	cfg.InitialRank = 5
	cfg.Ensemble.InitialSize = 8
	cfg.Ensemble.MaxSize = 10
	cfg.Ensemble.SVDBatch = 4
	cfg.Ensemble.Workers = 4
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.5, MaxVarianceChange: 0.9}
	return cfg
}

func TestTable1RowsMatchPaper(t *testing.T) {
	rows, text := Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if math.Abs(rows[0].Pert-67.83) > 0.01 || math.Abs(rows[0].Model-1823.99) > 0.01 {
		t.Fatalf("ORNL row = %+v", rows[0])
	}
	for _, want := range []string{"ORNL", "Purdue", "local", "pemodel"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table text missing %q:\n%s", want, text)
		}
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	rows, text := Table2()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Instance] = r
	}
	if r := byName["c1.xlarge"]; math.Abs(r.Pert-6.67) > 0.01 || math.Abs(r.Model-1030.42) > 0.01 || r.Cores != 8 {
		t.Fatalf("c1.xlarge row = %+v", r)
	}
	if !strings.Contains(text, "m1.small") {
		t.Fatal("table text missing m1.small")
	}
}

func TestLocalTimingsShape(t *testing.T) {
	res, text := LocalTimings(600, 6000, 210, 1)
	// ~77 min all-local vs ~86 min mixed (shape: 3-30% slower).
	ratio := res.MixedSGE.Makespan / res.LocalSGE.Makespan
	if ratio < 1.03 || ratio > 1.3 {
		t.Fatalf("mixed/local ratio = %v", ratio)
	}
	// Condor 10-20% slower than SGE.
	cRatio := res.LocalCondor.Makespan / res.LocalSGE.Makespan
	if cRatio < 1.05 || cRatio > 1.25 {
		t.Fatalf("condor/SGE ratio = %v", cRatio)
	}
	if res.Acoustics.JobsCompleted != 6000 {
		t.Fatalf("acoustics jobs = %d", res.Acoustics.JobsCompleted)
	}
	if !strings.Contains(text, "min") {
		t.Fatal("timings text missing units")
	}
}

func TestCostExampleMatchesPaper(t *testing.T) {
	b, text := CostExample()
	if math.Abs(b.TotalUSD-33.95) > 0.01 {
		t.Fatalf("total = %v", b.TotalUSD)
	}
	if !strings.Contains(text, "33.95") {
		t.Fatalf("cost text:\n%s", text)
	}
}

func TestFig1TimelinesRender(t *testing.T) {
	tl, text, err := Fig1Timelines(smallRealtimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() != 3*2 { // 3 rows × 2 cycles
		t.Fatalf("timeline spans = %d", tl.Len())
	}
	for _, want := range []string{"observation time", "forecaster time", "simulation time"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Fig1 text missing %q", want)
		}
	}
}

func TestFig2CycleRuns(t *testing.T) {
	res, text, err := Fig2ESSECycle(smallRealtimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank < 1 || res.Cycle.Ensemble.MembersUsed < 2 {
		t.Fatalf("degenerate Fig2 result: %+v", res)
	}
	if !strings.Contains(text, "SVD rounds") {
		t.Fatal("Fig2 text incomplete")
	}
}

func TestFig3Fig4SpeedupAndEquivalence(t *testing.T) {
	res, text, err := Fig3Fig4Comparison(16, 8, 3*time.Millisecond, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.5 {
		t.Fatalf("MTC speedup = %v, want > 1.5 with 8 workers", res.Speedup)
	}
	if res.SubspaceAgree < 1-1e-8 {
		t.Fatalf("serial and parallel subspaces disagree: %v", res.SubspaceAgree)
	}
	if !strings.Contains(text, "speedup") {
		t.Fatal("Fig3/4 text incomplete")
	}
}

func TestFig5Fig6Fields(t *testing.T) {
	res, text, err := Fig5Fig6Uncertainty(smallRealtimeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SST) != res.NX*res.NY || len(res.Deep) != res.NX*res.NY {
		t.Fatal("field sizes wrong")
	}
	nonZero := 0
	for _, v := range res.SST {
		if v > 0 {
			nonZero++
		}
		if v < 0 {
			t.Fatal("negative std-dev")
		}
	}
	if nonZero == 0 {
		t.Fatal("SST uncertainty identically zero")
	}
	if !strings.Contains(text, "Fig 5") || !strings.Contains(text, "Fig 6") {
		t.Fatal("figure text incomplete")
	}
	if len(res.Cycles) != 2 {
		t.Fatalf("cycles = %d", len(res.Cycles))
	}
}
