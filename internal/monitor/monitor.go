// Package monitor provides live visibility into a running ESSE ensemble
// — the capability the paper found missing on the Grid ("This approach
// gives no easy way for the user to monitor the progress of one's jobs",
// §5.3.1). A Monitor consumes workflow progress snapshots through the
// engine's OnProgress hook and serves them over HTTP as JSON
// (machine-readable) and plain text (forecaster-readable), including a
// short history for trend display.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"esse/internal/telemetry"
	"esse/internal/wire"
	"esse/internal/workflow"
)

// histEntry pairs a snapshot with the value of the update counter at
// the moment it arrived, so /history reports true update ordinals even
// after the ring has dropped older entries.
type histEntry struct {
	p       workflow.Progress
	updates int64
}

// Monitor aggregates progress snapshots from one or more ensemble runs.
type Monitor struct {
	mu      sync.RWMutex
	latest  workflow.Progress
	history []histEntry
	updates int64
	maxHist int
}

// New returns a monitor keeping up to maxHistory snapshots (default 256
// when zero).
func New(maxHistory int) *Monitor {
	if maxHistory <= 0 {
		maxHistory = 256
	}
	return &Monitor{maxHist: maxHistory}
}

// Callback returns the function to plug into workflow.Config.OnProgress.
func (m *Monitor) Callback() func(workflow.Progress) {
	return func(p workflow.Progress) {
		m.mu.Lock()
		m.latest = p
		m.updates++
		m.history = append(m.history, histEntry{p: p, updates: m.updates})
		if len(m.history) > m.maxHist {
			m.history = m.history[len(m.history)-m.maxHist:]
		}
		m.mu.Unlock()
	}
}

// Latest returns the most recent snapshot and how many updates arrived.
func (m *Monitor) Latest() (workflow.Progress, int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.latest, m.updates
}

// statusJSON is the wire format of /status.
type statusJSON struct {
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Cancelled int     `json:"cancelled"`
	Target    int     `json:"target"`
	SVDRounds int     `json:"svd_rounds"`
	Converged bool    `json:"converged"`
	Rho       float64 `json:"rho"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Updates   int64   `json:"updates"`
}

// Handler serves GET /status (JSON), GET /status.txt (text) and
// GET /history (JSON array).
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		p, n := m.Latest()
		w.Header().Set("Content-Type", "application/json")
		//esselint:allow errdrop a failed write means the client went away; nothing to do
		_ = json.NewEncoder(w).Encode(toJSON(p, n))
	})
	mux.HandleFunc("/status.txt", func(w http.ResponseWriter, r *http.Request) {
		p, n := m.Latest()
		var b strings.Builder
		fmt.Fprintf(&b, "ensemble progress: %d/%d members (%d failed, %d cancelled)\n",
			p.Completed, p.Target, p.Failed, p.Cancelled)
		fmt.Fprintf(&b, "SVD rounds: %d, converged: %v (rho=%.4f)\n", p.SVDRounds, p.Converged, p.Rho)
		fmt.Fprintf(&b, "elapsed: %v, %d updates\n", p.Elapsed.Round(time.Millisecond), n)
		w.Header().Set("Content-Type", "text/plain")
		//esselint:allow errdrop a failed write means the client went away; nothing to do
		_, _ = io.WriteString(w, b.String())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		// Snapshot under the read lock; convert and encode outside it so
		// a slow client cannot stretch the critical section.
		m.mu.RLock()
		entries := make([]histEntry, len(m.history))
		copy(entries, m.history)
		m.mu.RUnlock()
		out := make([]statusJSON, len(entries))
		for i, e := range entries {
			out[i] = toJSON(e.p, e.updates)
		}
		w.Header().Set("Content-Type", "application/json")
		//esselint:allow errdrop a failed write means the client went away; nothing to do
		_ = json.NewEncoder(w).Encode(out)
	})
	return mux
}

// HandlerWith serves the monitor endpoints plus tel's /metrics,
// /events, /trace and /debug/pprof/* on one mux. A nil tel degrades to
// the plain Handler set.
func (m *Monitor) HandlerWith(tel *telemetry.Telemetry) http.Handler {
	mux := m.Handler().(*http.ServeMux)
	tel.Mount(mux)
	return mux
}

// finiteOr returns v, or fallback when v is NaN/±Inf.
func finiteOr(v, fallback float64) float64 {
	if !wire.Finite(v) {
		return fallback
	}
	return v
}

func toJSON(p workflow.Progress, updates int64) statusJSON {
	js := statusJSON{
		Completed: p.Completed,
		Failed:    p.Failed,
		Cancelled: p.Cancelled,
		Target:    p.Target,
		SVDRounds: p.SVDRounds,
		Converged: p.Converged,
		Rho:       p.Rho,
		ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond),
		Updates:   updates,
	}
	// encoding/json fails at runtime on non-finite floats, and rho is a
	// ratio of singular values that legitimately goes NaN when the
	// ensemble degenerates — degrade the payload instead of killing the
	// status endpoint mid-run.
	js.Rho = finiteOr(js.Rho, 0)
	js.ElapsedMS = finiteOr(js.ElapsedMS, 0)
	return js
}
