// Package monitor provides live visibility into a running ESSE ensemble
// — the capability the paper found missing on the Grid ("This approach
// gives no easy way for the user to monitor the progress of one's jobs",
// §5.3.1). A Monitor consumes workflow progress snapshots through the
// engine's OnProgress hook and serves them over HTTP as JSON
// (machine-readable) and plain text (forecaster-readable), including a
// short history for trend display.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"esse/internal/workflow"
)

// Monitor aggregates progress snapshots from one or more ensemble runs.
type Monitor struct {
	mu      sync.RWMutex
	latest  workflow.Progress
	history []workflow.Progress
	updates int64
	maxHist int
}

// New returns a monitor keeping up to maxHistory snapshots (default 256
// when zero).
func New(maxHistory int) *Monitor {
	if maxHistory <= 0 {
		maxHistory = 256
	}
	return &Monitor{maxHist: maxHistory}
}

// Callback returns the function to plug into workflow.Config.OnProgress.
func (m *Monitor) Callback() func(workflow.Progress) {
	return func(p workflow.Progress) {
		m.mu.Lock()
		m.latest = p
		m.updates++
		m.history = append(m.history, p)
		if len(m.history) > m.maxHist {
			m.history = m.history[len(m.history)-m.maxHist:]
		}
		m.mu.Unlock()
	}
}

// Latest returns the most recent snapshot and how many updates arrived.
func (m *Monitor) Latest() (workflow.Progress, int64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.latest, m.updates
}

// statusJSON is the wire format of /status.
type statusJSON struct {
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Cancelled int     `json:"cancelled"`
	Target    int     `json:"target"`
	SVDRounds int     `json:"svd_rounds"`
	Converged bool    `json:"converged"`
	Rho       float64 `json:"rho"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Updates   int64   `json:"updates"`
}

// Handler serves GET /status (JSON), GET /status.txt (text) and
// GET /history (JSON array).
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		p, n := m.Latest()
		w.Header().Set("Content-Type", "application/json")
		//esselint:allow errdrop a failed write means the client went away; nothing to do
		_ = json.NewEncoder(w).Encode(toJSON(p, n))
	})
	mux.HandleFunc("/status.txt", func(w http.ResponseWriter, r *http.Request) {
		p, n := m.Latest()
		var b strings.Builder
		fmt.Fprintf(&b, "ensemble progress: %d/%d members (%d failed, %d cancelled)\n",
			p.Completed, p.Target, p.Failed, p.Cancelled)
		fmt.Fprintf(&b, "SVD rounds: %d, converged: %v (rho=%.4f)\n", p.SVDRounds, p.Converged, p.Rho)
		fmt.Fprintf(&b, "elapsed: %v, %d updates\n", p.Elapsed.Round(time.Millisecond), n)
		w.Header().Set("Content-Type", "text/plain")
		//esselint:allow errdrop a failed write means the client went away; nothing to do
		_, _ = io.WriteString(w, b.String())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		m.mu.RLock()
		out := make([]statusJSON, len(m.history))
		for i, p := range m.history {
			out[i] = toJSON(p, int64(i+1))
		}
		m.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		//esselint:allow errdrop a failed write means the client went away; nothing to do
		_ = json.NewEncoder(w).Encode(out)
	})
	return mux
}

func toJSON(p workflow.Progress, updates int64) statusJSON {
	return statusJSON{
		Completed: p.Completed,
		Failed:    p.Failed,
		Cancelled: p.Cancelled,
		Target:    p.Target,
		SVDRounds: p.SVDRounds,
		Converged: p.Converged,
		Rho:       p.Rho,
		ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond),
		Updates:   updates,
	}
}
