package monitor

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"esse/internal/core"
	"esse/internal/linalg"
	"esse/internal/rng"
	"esse/internal/workflow"
)

func runMonitoredEnsemble(t *testing.T, m *Monitor) *workflow.Result {
	t.Helper()
	s := rng.New(1)
	a := linalg.NewDense(40, 2)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	truth := &core.Subspace{Modes: f.Q, Sigma: []float64{2, 1}}
	master := rng.New(2)
	runner := func(ctx context.Context, index int) ([]float64, error) {
		return truth.Perturb(nil, master.Split(uint64(index)), 0.01), nil
	}
	cfg := workflow.DefaultConfig()
	cfg.InitialSize = 16
	cfg.MaxSize = 16
	cfg.SVDBatch = 4
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	cfg.OnProgress = m.Callback()
	res, err := workflow.RunParallel(context.Background(), cfg, make([]float64, 40), runner)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMonitorReceivesUpdates(t *testing.T) {
	m := New(0)
	res := runMonitoredEnsemble(t, m)
	p, n := m.Latest()
	if n == 0 {
		t.Fatal("no progress updates delivered")
	}
	if p.Completed != res.MembersUsed {
		t.Fatalf("final snapshot completed=%d, result=%d", p.Completed, res.MembersUsed)
	}
	if p.Target != 16 {
		t.Fatalf("target = %d", p.Target)
	}
}

func TestMonitorHistoryMonotone(t *testing.T) {
	m := New(0)
	runMonitoredEnsemble(t, m)
	m.mu.RLock()
	defer m.mu.RUnlock()
	prev := -1
	for i, e := range m.history {
		if e.p.Completed < prev {
			t.Fatalf("history not monotone at %d: %d < %d", i, e.p.Completed, prev)
		}
		prev = e.p.Completed
	}
	if len(m.history) == 0 {
		t.Fatal("empty history")
	}
}

func TestMonitorHistoryBounded(t *testing.T) {
	m := New(5)
	cb := m.Callback()
	for i := 0; i < 50; i++ {
		cb(workflow.Progress{Completed: i})
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.history) != 5 {
		t.Fatalf("history length %d, want 5", len(m.history))
	}
	if m.history[4].p.Completed != 49 {
		t.Fatal("history did not keep the newest snapshots")
	}
	if m.history[4].updates != 50 {
		t.Fatalf("newest history entry carries update %d, want 50", m.history[4].updates)
	}
}

func TestStatusEndpoints(t *testing.T) {
	m := New(0)
	runMonitoredEnsemble(t, m)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Completed int     `json:"completed"`
		Target    int     `json:"target"`
		Rho       float64 `json:"rho"`
		Updates   int64   `json:"updates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 16 || st.Target != 16 || st.Updates == 0 {
		t.Fatalf("status = %+v", st)
	}

	resp2, err := ts.Client().Get(ts.URL + "/status.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body), "16/16 members") {
		t.Fatalf("status.txt = %q", body)
	}

	resp3, err := ts.Client().Get(ts.URL + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var hist []json.RawMessage
	if err := json.NewDecoder(resp3.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("empty history endpoint")
	}
}

func TestMonitorEmptyStatus(t *testing.T) {
	m := New(0)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("empty monitor status = %d", resp.StatusCode)
	}
}
