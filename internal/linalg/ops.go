package linalg

import (
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the flop count above which matrix multiplication
// fans out across goroutines.
const parallelThreshold = 1 << 18

// Add returns a + b.
func Add(a, b *Dense) *Dense {
	checkSameShape(a, b, "Add")
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Dense) *Dense {
	checkSameShape(a, b, "Sub")
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Dense) {
	checkSameShape(a, b, "AddInPlace")
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(s float64, a *Dense) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

func checkSameShape(a, b *Dense, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: " + op + " shape mismatch")
	}
}

// Mul returns a*b, parallelizing across row blocks for large problems.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("linalg: Mul inner dimension mismatch")
	}
	out := NewDense(a.Rows, b.Cols)
	mulInto(out, a, b)
	return out
}

func mulInto(out, a, b *Dense) {
	flops := a.Rows * a.Cols * b.Cols
	if flops < parallelThreshold {
		mulRange(out, a, b, 0, a.Rows)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulRange computes rows [lo,hi) of out = a*b using an ikj loop order
// that streams through b row-wise (cache friendly for row-major data).
func mulRange(out, a, b *Dense, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		outRow := out.Row(i)
		aRow := a.Row(i)
		for k, aik := range aRow {
			if aik == 0 {
				continue
			}
			bRow := b.Data[k*n : (k+1)*n]
			for j, bkj := range bRow {
				outRow[j] += aik * bkj
			}
		}
	}
}

// MulTA returns aᵀ*b without forming the transpose.
func MulTA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("linalg: MulTA row mismatch")
	}
	out := NewDense(a.Cols, b.Cols)
	m := a.Cols
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		aRow := a.Row(k)
		bRow := b.Row(k)
		for i := 0; i < m; i++ {
			aki := aRow[i]
			if aki == 0 {
				continue
			}
			outRow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				outRow[j] += aki * bRow[j]
			}
		}
	}
	return out
}

// MulBT returns a*bᵀ without forming the transpose.
func MulBT(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("linalg: MulBT column mismatch")
	}
	out := NewDense(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		aRow := a.Row(i)
		outRow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			outRow[j] = Dot(aRow, b.Row(j))
		}
	}
	return out
}

// MatVec returns a*x.
func MatVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: MatVec dimension mismatch")
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		y[i] = Dot(a.Row(i), x)
	}
	return y
}

// MatTVec returns aᵀ*x.
func MatTVec(a *Dense, x []float64) []float64 {
	if a.Rows != len(x) {
		panic("linalg: MatTVec dimension mismatch")
	}
	y := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// VecSub returns x - y as a new slice.
func VecSub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: VecSub length mismatch")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - y[i]
	}
	return out
}

// VecAdd returns x + y as a new slice.
func VecAdd(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: VecAdd length mismatch")
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + y[i]
	}
	return out
}

// VecScale returns s*x as a new slice.
func VecScale(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s * v
	}
	return out
}

// OuterAdd accumulates alpha * x yᵀ into m.
func OuterAdd(m *Dense, alpha float64, x, y []float64) {
	if m.Rows != len(x) || m.Cols != len(y) {
		panic("linalg: OuterAdd dimension mismatch")
	}
	for i, xi := range x {
		c := alpha * xi
		if c == 0 {
			continue
		}
		row := m.Row(i)
		for j, yj := range y {
			row[j] += c * yj
		}
	}
}
