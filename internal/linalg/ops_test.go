package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"esse/internal/rng"
)

func TestAddSub(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{4, 3, 2, 1})
	sum := Add(a, b)
	for _, v := range sum.Data {
		if v != 5 {
			t.Fatalf("Add wrong: %v", sum.Data)
		}
	}
	diff := Sub(sum, b)
	if !diff.EqualApprox(a, 0) {
		t.Fatal("Sub(Add(a,b),b) != a")
	}
}

func TestScale(t *testing.T) {
	a := NewDenseFrom(1, 3, []float64{1, -2, 3})
	s := Scale(-2, a)
	want := NewDenseFrom(1, 3, []float64{-2, 4, -6})
	if !s.EqualApprox(want, 0) {
		t.Fatal("Scale wrong")
	}
	ScaleInPlace(0.5, s)
	want2 := NewDenseFrom(1, 3, []float64{-1, 2, -3})
	if !s.EqualApprox(want2, 0) {
		t.Fatal("ScaleInPlace wrong")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := NewDenseFrom(2, 2, []float64{58, 64, 139, 154})
	if !c.EqualApprox(want, 1e-12) {
		t.Fatalf("Mul = %v", c)
	}
}

func TestMulIdentity(t *testing.T) {
	s := rng.New(4)
	a := randomDense(s, 7, 7)
	if !Mul(a, Identity(7)).EqualApprox(a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !Mul(Identity(7), a).EqualApprox(a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMulParallelMatchesSerial(t *testing.T) {
	s := rng.New(5)
	// Big enough to trip the parallel path.
	a := randomDense(s, 80, 90)
	b := randomDense(s, 90, 70)
	got := Mul(a, b)
	want := NewDense(80, 70)
	mulRange(want, a, b, 0, 80)
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("parallel Mul differs from serial reference")
	}
}

func TestMulTA(t *testing.T) {
	s := rng.New(6)
	a := randomDense(s, 10, 4)
	b := randomDense(s, 10, 5)
	got := MulTA(a, b)
	want := Mul(a.T(), b)
	if !got.EqualApprox(want, 1e-11) {
		t.Fatal("MulTA differs from explicit transpose product")
	}
}

func TestMulBT(t *testing.T) {
	s := rng.New(7)
	a := randomDense(s, 6, 8)
	b := randomDense(s, 5, 8)
	got := MulBT(a, b)
	want := Mul(a, b.T())
	if !got.EqualApprox(want, 1e-11) {
		t.Fatal("MulBT differs from explicit transpose product")
	}
}

func TestMatVec(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 0, -1, 2, 1, 0})
	x := []float64{3, 4, 5}
	y := MatVec(a, x)
	if y[0] != -2 || y[1] != 10 {
		t.Fatalf("MatVec = %v", y)
	}
	yt := MatTVec(a, []float64{1, 1})
	if yt[0] != 3 || yt[1] != 1 || yt[2] != -1 {
		t.Fatalf("MatTVec = %v", yt)
	}
}

func TestDotAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := 1e200
	x := []float64{big, big}
	got := Norm2(x)
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflow-guard failed: %v vs %v", got, want)
	}
	if Norm2([]float64{0, 0, 0}) != 0 {
		t.Fatal("Norm2 of zeros != 0")
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{5, 7}
	y := []float64{2, 3}
	if d := VecSub(x, y); d[0] != 3 || d[1] != 4 {
		t.Fatalf("VecSub = %v", d)
	}
	if a := VecAdd(x, y); a[0] != 7 || a[1] != 10 {
		t.Fatalf("VecAdd = %v", a)
	}
	if sc := VecScale(2, y); sc[0] != 4 || sc[1] != 6 {
		t.Fatalf("VecScale = %v", sc)
	}
}

func TestOuterAdd(t *testing.T) {
	m := NewDense(2, 3)
	OuterAdd(m, 2, []float64{1, 2}, []float64{3, 4, 5})
	want := NewDenseFrom(2, 3, []float64{6, 8, 10, 12, 16, 20})
	if !m.EqualApprox(want, 0) {
		t.Fatalf("OuterAdd = %v", m)
	}
}

// Property: (A*B)*C == A*(B*C) within round-off.
func TestMulAssociativityProperty(t *testing.T) {
	s := rng.New(8)
	f := func(seed uint16) bool {
		st := s.Split(uint64(seed))
		n := 2 + st.Intn(8)
		a := randomDense(st, n, n)
		b := randomDense(st, n, n)
		c := randomDense(st, n, n)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return left.EqualApprox(right, 1e-9*(1+left.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose reverses products: (AB)ᵀ == Bᵀ Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	s := rng.New(9)
	f := func(seed uint16) bool {
		st := s.Split(uint64(seed))
		m, k, n := 1+st.Intn(6), 1+st.Intn(6), 1+st.Intn(6)
		a := randomDense(st, m, k)
		b := randomDense(st, k, n)
		return Mul(a, b).T().EqualApprox(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulSmall(b *testing.B) {
	s := rng.New(1)
	a := randomDense(s, 32, 32)
	c := randomDense(s, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkMulLargeParallel(b *testing.B) {
	s := rng.New(1)
	a := randomDense(s, 256, 256)
	c := randomDense(s, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}
