package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"esse/internal/rng"
)

func TestSymEigDiagonal(t *testing.T) {
	a := Diag([]float64{3, 1, 2})
	e := SymEig(a)
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(e.Values[i]-v) > 1e-12 {
			t.Fatalf("eigenvalues = %v, want %v", e.Values, want)
		}
	}
}

func TestSymEigKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewDenseFrom(2, 2, []float64{2, 1, 1, 2})
	e := SymEig(a)
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v", e.Values)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	s := rng.New(20)
	b := randomDense(s, 8, 8)
	a := Add(b, b.T()) // symmetric
	e := SymEig(a)
	rec := Mul(Mul(e.Vectors, Diag(e.Values)), e.Vectors.T())
	if !rec.EqualApprox(a, 1e-9) {
		t.Fatal("V Λ Vᵀ != A")
	}
}

func TestSymEigOrthogonalVectors(t *testing.T) {
	s := rng.New(21)
	b := randomDense(s, 10, 10)
	a := Add(b, b.T())
	e := SymEig(a)
	if !MulTA(e.Vectors, e.Vectors).EqualApprox(Identity(10), 1e-9) {
		t.Fatal("eigenvector matrix not orthogonal")
	}
}

func TestSymEigSortedDescending(t *testing.T) {
	s := rng.New(22)
	b := randomDense(s, 12, 12)
	a := Add(b, b.T())
	e := SymEig(a)
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", e.Values)
		}
	}
}

func TestSymEigPSDOfGram(t *testing.T) {
	// Gram matrices are PSD: all eigenvalues >= 0 (within round-off).
	s := rng.New(23)
	f := func(seed uint16) bool {
		st := s.Split(uint64(seed))
		m, n := 2+st.Intn(8), 1+st.Intn(6)
		a := randomDense(st, m, n)
		e := SymEig(MulTA(a, a))
		for _, v := range e.Values {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDIdentity(t *testing.T) {
	f := SVD(Identity(4))
	for _, s := range f.S {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("singular values of I = %v", f.S)
		}
	}
}

func TestSVDKnownRank1(t *testing.T) {
	// A = u vᵀ with |u|=5, |v|=5 has one singular value 25 (wait: σ = |u||v|).
	u := []float64{3, 4}
	v := []float64{0, 5}
	a := NewDense(2, 2)
	OuterAdd(a, 1, u, v)
	f := SVD(a)
	if math.Abs(f.S[0]-25) > 1e-10 {
		t.Fatalf("rank-1 σ₀ = %v, want 25", f.S[0])
	}
	if f.S[1] > 1e-10 {
		t.Fatalf("rank-1 σ₁ = %v, want 0", f.S[1])
	}
}

func TestSVDReconstructionTall(t *testing.T) {
	s := rng.New(24)
	a := randomDense(s, 20, 6)
	f := SVD(a)
	if !f.Reconstruct().EqualApprox(a, 1e-9) {
		t.Fatal("SVD does not reconstruct tall A")
	}
}

func TestSVDReconstructionWide(t *testing.T) {
	s := rng.New(25)
	a := randomDense(s, 5, 17)
	f := SVD(a)
	if !f.Reconstruct().EqualApprox(a, 1e-9) {
		t.Fatal("SVD does not reconstruct wide A")
	}
}

func TestSVDOrthogonality(t *testing.T) {
	s := rng.New(26)
	a := randomDense(s, 15, 7)
	f := SVD(a)
	if !MulTA(f.U, f.U).EqualApprox(Identity(7), 1e-9) {
		t.Fatal("UᵀU != I")
	}
	if !MulTA(f.V, f.V).EqualApprox(Identity(7), 1e-9) {
		t.Fatal("VᵀV != I")
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	s := rng.New(27)
	a := randomDense(s, 9, 9)
	f := SVD(a)
	for i := 1; i < len(f.S); i++ {
		if f.S[i] > f.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", f.S)
		}
		if f.S[i] < 0 {
			t.Fatalf("negative singular value: %v", f.S)
		}
	}
}

func TestSVDProperty(t *testing.T) {
	s := rng.New(28)
	f := func(seed uint16) bool {
		st := s.Split(uint64(seed))
		m, n := 1+st.Intn(10), 1+st.Intn(10)
		a := randomDense(st, m, n)
		svd := SVD(a)
		return svd.Reconstruct().EqualApprox(a, 1e-8*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDFrobeniusInvariant(t *testing.T) {
	// ||A||_F² == Σ σᵢ².
	s := rng.New(29)
	a := randomDense(s, 12, 5)
	f := SVD(a)
	sum := 0.0
	for _, sv := range f.S {
		sum += sv * sv
	}
	fr := a.FrobNorm()
	if math.Abs(sum-fr*fr) > 1e-9*(1+fr*fr) {
		t.Fatalf("Σσ² = %v, ||A||²= %v", sum, fr*fr)
	}
}

func TestThinSVDGramMatchesJacobi(t *testing.T) {
	s := rng.New(30)
	a := randomDense(s, 300, 8) // tall, ensemble-shaped
	gj := SVD(a)
	gr := ThinSVDGram(a, 8)
	for i := range gr.S {
		if math.Abs(gr.S[i]-gj.S[i]) > 1e-7*(1+gj.S[0]) {
			t.Fatalf("Gram σ[%d]=%v, Jacobi σ[%d]=%v", i, gr.S[i], i, gj.S[i])
		}
	}
	if !gr.Reconstruct().EqualApprox(a, 1e-7*(1+a.MaxAbs())) {
		t.Fatal("Gram thin SVD does not reconstruct A")
	}
}

func TestThinSVDGramTruncation(t *testing.T) {
	s := rng.New(31)
	a := randomDense(s, 100, 10)
	f := ThinSVDGram(a, 4)
	if len(f.S) != 4 || f.U.Cols != 4 || f.V.Cols != 4 {
		t.Fatalf("truncated shapes: k=%d U=%dx%d V=%dx%d", len(f.S), f.U.Rows, f.U.Cols, f.V.Rows, f.V.Cols)
	}
	full := SVD(a)
	for i := 0; i < 4; i++ {
		if math.Abs(f.S[i]-full.S[i]) > 1e-7*(1+full.S[0]) {
			t.Fatalf("truncated σ[%d] mismatch: %v vs %v", i, f.S[i], full.S[i])
		}
	}
}

func TestSVDRank(t *testing.T) {
	// Build an exactly rank-2 matrix.
	s := rng.New(32)
	u := randomDense(s, 10, 2)
	v := randomDense(s, 6, 2)
	a := MulBT(u, v)
	f := SVD(a)
	if r := f.Rank(1e-10); r != 2 {
		t.Fatalf("Rank = %d, want 2 (σ = %v)", r, f.S)
	}
}

func TestSVDTruncate(t *testing.T) {
	s := rng.New(33)
	a := randomDense(s, 8, 6)
	f := SVD(a).Truncate(3)
	if len(f.S) != 3 || f.U.Cols != 3 || f.V.Cols != 3 {
		t.Fatal("Truncate shapes wrong")
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	a := NewDense(5, 3)
	f := SVD(a)
	for _, s := range f.S {
		if s != 0 {
			t.Fatalf("zero matrix has σ = %v", f.S)
		}
	}
}

func BenchmarkSVDEnsembleShape(b *testing.B) {
	// Typical ESSE shape at test scale: state 2000, ensemble 50.
	s := rng.New(1)
	a := randomDense(s, 2000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ThinSVDGram(a, 50)
	}
}

func BenchmarkSymEig32(b *testing.B) {
	s := rng.New(1)
	m := randomDense(s, 32, 32)
	a := Add(m, m.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymEig(a)
	}
}
