package linalg

import (
	"math"
	"sort"
)

// SVDFactors holds a thin singular value decomposition A = U diag(S) Vᵀ
// with singular values sorted in descending order. U is m×k and V is n×k
// where k = min(m, n) (or the requested truncation rank).
type SVDFactors struct {
	U *Dense
	S []float64
	V *Dense
}

// SVD computes a thin SVD of a, dispatching on shape: for tall matrices
// (Rows >= Cols) it runs one-sided Jacobi directly; for wide matrices it
// factors the transpose and swaps U and V.
//
// ESSE anomaly matrices are extremely tall (state dimension ≫ ensemble
// size), which is the cheap case: the Jacobi sweeps operate on the n
// columns only.
func SVD(a *Dense) *SVDFactors {
	if a.Rows >= a.Cols {
		return oneSidedJacobi(a)
	}
	f := oneSidedJacobi(a.T())
	return &SVDFactors{U: f.V, S: f.S, V: f.U}
}

// oneSidedJacobi computes the thin SVD of a tall matrix (m >= n) by
// orthogonalizing its columns with Jacobi plane rotations. V accumulates
// the rotations; on convergence the column norms are the singular values
// and the normalized columns form U.
func oneSidedJacobi(a *Dense) *SVDFactors {
	m, n := a.Rows, a.Cols
	u := a.Clone()
	v := Identity(n)

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram entries for columns p and q.
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					up := u.Data[i*n+p]
					uq := u.Data[i*n+q]
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				rotated = true
				// Rotation that annihilates the off-diagonal Gram entry.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					up := u.Data[i*n+p]
					uq := u.Data[i*n+q]
					u.Data[i*n+p] = c*up - s*uq
					u.Data[i*n+q] = s*up + c*uq
				}
				for i := 0; i < n; i++ {
					vp := v.Data[i*n+p]
					vq := v.Data[i*n+q]
					v.Data[i*n+p] = c*vp - s*vq
					v.Data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Extract singular values (column norms) and normalize U.
	sv := make([]float64, n)
	col := make([]float64, m)
	for j := 0; j < n; j++ {
		u.Col(col, j)
		sv[j] = Norm2(col)
		if sv[j] > 0 {
			inv := 1 / sv[j]
			for i := 0; i < m; i++ {
				u.Data[i*n+j] *= inv
			}
		}
	}
	// Sort by descending singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return sv[idx[i]] > sv[idx[j]] })
	sortedS := make([]float64, n)
	sortedU := NewDense(m, n)
	sortedV := NewDense(n, n)
	ucol := make([]float64, m)
	vcol := make([]float64, n)
	for out, in := range idx {
		sortedS[out] = sv[in]
		u.Col(ucol, in)
		sortedU.SetCol(out, ucol)
		v.Col(vcol, in)
		sortedV.SetCol(out, vcol)
	}
	return &SVDFactors{U: sortedU, S: sortedS, V: sortedV}
}

// ThinSVDGram computes the dominant k singular triplets of a tall matrix
// via the eigendecomposition of the small Gram matrix AᵀA (n×n). This is
// the method of choice for ESSE anomaly matrices where m (state size) is
// orders of magnitude larger than n (ensemble size): cost is O(m n² + n³)
// with only one pass over the tall matrix.
//
// Singular values below ~sqrt(eps)*s_max lose relative accuracy compared
// to Jacobi; ESSE only consumes the dominant, well-separated part of the
// spectrum, where the Gram approach is accurate.
func ThinSVDGram(a *Dense, k int) *SVDFactors {
	m, n := a.Rows, a.Cols
	if k <= 0 || k > n {
		k = n
	}
	gram := MulTA(a, a) // n×n
	eig := SymEig(gram)
	s := make([]float64, 0, k)
	v := NewDense(n, k)
	col := make([]float64, n)
	for i := 0; i < k; i++ {
		lambda := eig.Values[i]
		if lambda < 0 {
			lambda = 0
		}
		s = append(s, math.Sqrt(lambda))
		// Write each eigenvector straight into V through one reused
		// column buffer.
		eig.Vectors.Col(col, i)
		v.SetCol(i, col)
	}
	// U = A V Σ⁻¹ for non-negligible singular values.
	u := NewDense(m, len(s))
	av := Mul(a, v) // m×k
	smax := 0.0
	if len(s) > 0 {
		smax = s[0]
	}
	// Abs guards the floor itself: a slightly negative leading value from
	// the Gram eigensolve must not drag the threshold below 1e-13.
	floor := 1e-13 * (1 + math.Abs(smax))
	ucol := make([]float64, m)
	for j := range s {
		av.Col(ucol, j)
		if s[j] > floor {
			inv := 1 / s[j]
			for i := range ucol {
				ucol[i] *= inv
			}
		} else {
			// Degenerate direction: leave a zero column; callers truncate
			// at the numerical rank anyway.
			for i := range ucol {
				ucol[i] = 0
			}
		}
		u.SetCol(j, ucol)
	}
	return &SVDFactors{U: u, S: s, V: v}
}

// Rank returns the numerical rank implied by the singular values at the
// given relative tolerance.
func (f *SVDFactors) Rank(relTol float64) int {
	if len(f.S) == 0 {
		return 0
	}
	thresh := relTol * f.S[0]
	r := 0
	for _, s := range f.S {
		if s > thresh {
			r++
		}
	}
	return r
}

// Truncate returns a copy keeping only the first k triplets.
func (f *SVDFactors) Truncate(k int) *SVDFactors {
	if k >= len(f.S) {
		return f
	}
	u := f.U.Slice(0, f.U.Rows, 0, k)
	v := f.V.Slice(0, f.V.Rows, 0, k)
	s := make([]float64, k)
	copy(s, f.S[:k])
	return &SVDFactors{U: u, S: s, V: v}
}

// Reconstruct returns U diag(S) Vᵀ (mainly for testing).
func (f *SVDFactors) Reconstruct() *Dense {
	k := len(f.S)
	us := NewDense(f.U.Rows, k)
	for i := 0; i < f.U.Rows; i++ {
		for j := 0; j < k; j++ {
			us.Set(i, j, f.U.At(i, j)*f.S[j])
		}
	}
	return MulBT(us, f.V)
}
