package linalg

import (
	"math"
	"strings"
	"testing"

	"esse/internal/rng"
)

func randomDense(s *rng.Stream, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = s.Norm()
	}
	return m
}

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestNewDenseFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5.5)
	if m.At(1, 2) != 5.5 {
		t.Fatal("At/Set roundtrip failed")
	}
	if m.Data[1*3+2] != 5.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4)[%d,%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 || d.At(2, 2) != 3 || d.At(0, 1) != 0 {
		t.Fatal("Diag misplaced values")
	}
}

func TestTranspose(t *testing.T) {
	s := rng.New(1)
	m := randomDense(s, 5, 3)
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 5 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose value mismatch")
			}
		}
	}
	if !m.T().T().EqualApprox(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewDense(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestColSetCol(t *testing.T) {
	s := rng.New(2)
	m := randomDense(s, 4, 3)
	col := m.Col(nil, 1)
	for i := 0; i < 4; i++ {
		if col[i] != m.At(i, 1) {
			t.Fatal("Col returned wrong values")
		}
	}
	newCol := []float64{9, 8, 7, 6}
	m.SetCol(2, newCol)
	for i := 0; i < 4; i++ {
		if m.At(i, 2) != newCol[i] {
			t.Fatal("SetCol failed")
		}
	}
}

func TestSlice(t *testing.T) {
	s := rng.New(3)
	m := randomDense(s, 6, 6)
	sub := m.Slice(1, 4, 2, 5)
	if sub.Rows != 3 || sub.Cols != 3 {
		t.Fatalf("Slice shape %dx%d", sub.Rows, sub.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if sub.At(i, j) != m.At(i+1, j+2) {
				t.Fatal("Slice content mismatch")
			}
		}
	}
	sub.Set(0, 0, 99)
	if m.At(1, 2) == 99 {
		t.Fatal("Slice must copy, not alias")
	}
}

func TestAppendCols(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 1, []float64{5, 6})
	ab := a.AppendCols(b)
	want := NewDenseFrom(2, 3, []float64{1, 2, 5, 3, 4, 6})
	if !ab.EqualApprox(want, 0) {
		t.Fatalf("AppendCols = %v", ab)
	}
}

func TestTraceAndNorms(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{3, 0, 0, -4})
	if m.Trace() != -1 {
		t.Fatalf("Trace = %v", m.Trace())
	}
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v", got)
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestIsFinite(t *testing.T) {
	m := NewDense(2, 2)
	if !m.IsFinite() {
		t.Fatal("zero matrix should be finite")
	}
	m.Set(0, 1, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 1, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestFillZero(t *testing.T) {
	m := NewDense(3, 3)
	m.Fill(2.5)
	for _, v := range m.Data {
		if v != 2.5 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

// wantPanic runs f and asserts it panics with a message containing
// op, so every shape-validation path names the operation that failed.
func wantPanic(t *testing.T, op string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected panic", op)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, op) {
			t.Fatalf("%s: panic %v does not name the op", op, r)
		}
	}()
	f()
}

func TestColRejectsBadIndex(t *testing.T) {
	m := NewDense(3, 2)
	wantPanic(t, "Col", func() { m.Col(nil, 2) })
	wantPanic(t, "Col", func() { m.Col(nil, -1) })
}

func TestColRejectsShortDst(t *testing.T) {
	m := NewDense(3, 2)
	wantPanic(t, "Col", func() { m.Col(make([]float64, 2), 0) })
}

func TestColAcceptsLongDst(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 7)
	m.Set(1, 1, 8)
	got := m.Col(make([]float64, 5), 1)
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("Col with oversized dst = %v", got)
	}
}

func TestSetColRejectsBadIndex(t *testing.T) {
	m := NewDense(3, 2)
	wantPanic(t, "SetCol", func() { m.SetCol(2, make([]float64, 3)) })
	wantPanic(t, "SetCol", func() { m.SetCol(-1, make([]float64, 3)) })
}

func TestSetColRejectsBadLength(t *testing.T) {
	m := NewDense(3, 2)
	wantPanic(t, "SetCol", func() { m.SetCol(0, make([]float64, 2)) })
	wantPanic(t, "SetCol", func() { m.SetCol(0, make([]float64, 4)) })
}

func TestSliceRejectsBadBounds(t *testing.T) {
	m := NewDense(4, 3)
	wantPanic(t, "Slice", func() { m.Slice(-1, 2, 0, 3) })
	wantPanic(t, "Slice", func() { m.Slice(0, 5, 0, 3) })
	wantPanic(t, "Slice", func() { m.Slice(0, 4, 0, 4) })
	wantPanic(t, "Slice", func() { m.Slice(2, 1, 0, 3) })
	wantPanic(t, "Slice", func() { m.Slice(0, 4, 2, 1) })
}

func TestAppendColsRejectsRowMismatch(t *testing.T) {
	wantPanic(t, "AppendCols", func() { NewDense(3, 2).AppendCols(NewDense(4, 2)) })
}
