package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"esse/internal/rng"
)

func TestLUSolveKnown(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{2, 1, -1, -3, -1, 2, -2, 1, 2})
	x, err := SolveGeneral(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUResidualProperty(t *testing.T) {
	s := rng.New(1)
	f := func(seed uint16) bool {
		st := s.Split(uint64(seed))
		n := 1 + st.Intn(10)
		a := randomDense(st, n, n)
		b := st.NormVec(nil, n)
		x, err := SolveGeneral(a, b)
		if err != nil {
			return true // singular random draws are acceptable skips
		}
		res := VecSub(MatVec(a, x), b)
		return Norm2(res) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLUPivotingHandlesZeroDiagonal(t *testing.T) {
	// Without pivoting this matrix fails at the first pivot.
	a := NewDenseFrom(2, 2, []float64{0, 1, 1, 0})
	x, err := SolveGeneral(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestLUSingularDetected(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := LU(a); err == nil {
		t.Fatal("singular matrix factored")
	}
	if _, err := LU(NewDense(2, 3)); err == nil {
		t.Fatal("non-square matrix factored")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{3, 8, 4, 6})
	f, err := LU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-14)) > 1e-10 {
		t.Fatalf("det = %v, want -14", f.Det())
	}
	id, _ := LU(Identity(5))
	if math.Abs(id.Det()-1) > 1e-12 {
		t.Fatalf("det(I) = %v", id.Det())
	}
}

func TestInvertGeneral(t *testing.T) {
	s := rng.New(2)
	a := randomDense(s, 6, 6)
	AddInPlace(a, Scale(3, Identity(6))) // keep it comfortably nonsingular
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv).EqualApprox(Identity(6), 1e-9) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestSolveTridiagonal(t *testing.T) {
	// -1 2 -1 Laplacian-style system, diagonally dominant.
	n := 8
	sub := make([]float64, n)
	diag := make([]float64, n)
	super := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		sub[i], diag[i], super[i] = -1, 3, -1
		b[i] = float64(i + 1)
	}
	x, err := SolveTridiagonal(sub, diag, super, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify by residual against the explicit matrix.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 3)
		if i > 0 {
			a.Set(i, i-1, -1)
		}
		if i < n-1 {
			a.Set(i, i+1, -1)
		}
	}
	if res := Norm2(VecSub(MatVec(a, x), b)); res > 1e-10 {
		t.Fatalf("tridiagonal residual %v", res)
	}
}

func TestSolveTridiagonalErrors(t *testing.T) {
	if _, err := SolveTridiagonal([]float64{1}, []float64{1, 2}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("band length mismatch accepted")
	}
	if _, err := SolveTridiagonal([]float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("zero pivot accepted")
	}
}

func TestConditionEstimate(t *testing.T) {
	if c := ConditionEstimate(Identity(4)); math.Abs(c-1) > 1e-10 {
		t.Fatalf("cond(I) = %v", c)
	}
	bad := Diag([]float64{1, 1e-12})
	if c := ConditionEstimate(bad); c < 1e10 {
		t.Fatalf("ill-conditioned matrix reported cond %v", c)
	}
	sing := NewDense(3, 3)
	if c := ConditionEstimate(sing); !math.IsInf(c, 1) {
		t.Fatalf("singular matrix cond %v", c)
	}
}

func BenchmarkLUSolve64(b *testing.B) {
	s := rng.New(1)
	a := randomDense(s, 64, 64)
	AddInPlace(a, Scale(8, Identity(64)))
	rhs := s.NormVec(nil, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGeneral(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
