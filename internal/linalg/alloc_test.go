package linalg

import (
	"testing"
)

// assertAllocs pins the steady-state heap cost of a hot kernel. These
// are the teeth behind the hotalloc analyzer: if a refactor reintroduces
// a per-call allocation the lint suite may or may not see, this fails.
func assertAllocs(t *testing.T, name string, want float64, fn func()) {
	t.Helper()
	if got := testing.AllocsPerRun(20, fn); got != want {
		t.Errorf("%s: %.0f allocs/op, want %.0f", name, got, want)
	}
}

// spdMatrix builds a small well-conditioned SPD matrix.
func spdMatrix(n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1.0/float64(1+i+j))
		}
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestMulIntoAllocFree(t *testing.T) {
	// 16x16x16 = 4096 flops, far below parallelThreshold: the serial
	// path must not touch the heap. (The parallel path spawns worker
	// goroutines, which is an accepted, amortized-by-size cost.)
	n := 16
	a, b, out := spdMatrix(n), spdMatrix(n), NewDense(n, n)
	assertAllocs(t, "mulInto", 0, func() {
		for i := range out.Data {
			out.Data[i] = 0
		}
		mulInto(out, a, b)
	})
}

func TestOuterAddAllocFree(t *testing.T) {
	n := 32
	m := NewDense(n, n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = float64(n - i)
	}
	assertAllocs(t, "OuterAdd", 0, func() {
		OuterAdd(m, 0.5, x, y)
	})
}

func TestCholeskySolveIntoAllocFree(t *testing.T) {
	n := 12
	a := spdMatrix(n)
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("Cholesky failed on SPD matrix")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i) - 3
	}
	y := make([]float64, n)
	x := make([]float64, n)
	assertAllocs(t, "cholesky solve (Into pair)", 0, func() {
		solveLowerTriInto(y, l, b)
		solveCholeskyTInto(x, l, y)
	})
}

func TestLUSolveIntoAllocFree(t *testing.T) {
	n := 12
	f, err := LU(spdMatrix(n))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) + 1
	}
	x := make([]float64, n)
	assertAllocs(t, "LUFactors.SolveInto", 0, func() {
		f.SolveInto(x, b)
	})
}

func TestSolveTridiagonalIntoAllocFree(t *testing.T) {
	n := 64
	sub := make([]float64, n)
	diag := make([]float64, n)
	super := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		sub[i], diag[i], super[i], b[i] = -1, 4, -1, float64(i)
	}
	x := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	assertAllocs(t, "SolveTridiagonalInto", 0, func() {
		if err := SolveTridiagonalInto(x, c, d, sub, diag, super, b); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMatTVecDotAxpyAllocFree(t *testing.T) {
	n := 48
	a := spdMatrix(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	assertAllocs(t, "Dot", 0, func() { _ = Dot(x, x) })
	assertAllocs(t, "Axpy", 0, func() { Axpy(1.5, x, y) })
	// MatVec/MatTVec return fresh slices by contract: exactly one
	// allocation, never more.
	assertAllocs(t, "MatVec", 1, func() { _ = MatVec(a, x) })
	assertAllocs(t, "MatTVec", 1, func() { _ = MatTVec(a, x) })
}
