package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"esse/internal/rng"
)

func TestQRReconstruction(t *testing.T) {
	s := rng.New(10)
	a := randomDense(s, 8, 5)
	f := QR(a)
	if !Mul(f.Q, f.R).EqualApprox(a, 1e-10) {
		t.Fatal("QR does not reconstruct A")
	}
}

func TestQROrthonormalColumns(t *testing.T) {
	s := rng.New(11)
	a := randomDense(s, 10, 6)
	f := QR(a)
	qtq := MulTA(f.Q, f.Q)
	if !qtq.EqualApprox(Identity(6), 1e-10) {
		t.Fatal("QᵀQ != I")
	}
}

func TestQRUpperTriangular(t *testing.T) {
	s := rng.New(12)
	a := randomDense(s, 7, 7)
	f := QR(a)
	for i := 1; i < 7; i++ {
		for j := 0; j < i; j++ {
			if f.R.At(i, j) != 0 {
				t.Fatalf("R[%d,%d] = %v below diagonal", i, j, f.R.At(i, j))
			}
		}
	}
}

func TestQRProperty(t *testing.T) {
	s := rng.New(13)
	f := func(seed uint16) bool {
		st := s.Split(uint64(seed))
		n := 1 + st.Intn(8)
		m := n + st.Intn(8)
		a := randomDense(st, m, n)
		qr := QR(a)
		if !Mul(qr.Q, qr.R).EqualApprox(a, 1e-9) {
			return false
		}
		return MulTA(qr.Q, qr.Q).EqualApprox(Identity(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveUpperTri(t *testing.T) {
	r := NewDenseFrom(3, 3, []float64{2, 1, -1, 0, 3, 2, 0, 0, 4})
	x := SolveUpperTri(r, []float64{1, 13, 8})
	// Back-check.
	b := MatVec(r, x)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-13) > 1e-12 || math.Abs(b[2]-8) > 1e-12 {
		t.Fatalf("SolveUpperTri residual: %v", b)
	}
}

func TestSolveLowerTri(t *testing.T) {
	l := NewDenseFrom(2, 2, []float64{2, 0, 1, 3})
	x := SolveLowerTri(l, []float64{4, 7})
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-5.0/3) > 1e-12 {
		t.Fatalf("SolveLowerTri = %v", x)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: least squares must solve it exactly.
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	x := LeastSquares(a, []float64{5, 11})
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("LeastSquares = %v, want [1 2]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 through noisy-free points: exact recovery expected.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(5, 2)
	b := make([]float64, 5)
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	coef := LeastSquares(a, b)
	if math.Abs(coef[0]-2) > 1e-10 || math.Abs(coef[1]-1) > 1e-10 {
		t.Fatalf("LeastSquares fit = %v, want [2 1]", coef)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	s := rng.New(14)
	// Build SPD matrix A = BᵀB + I.
	b := randomDense(s, 6, 6)
	a := MulTA(b, b)
	AddInPlace(a, Identity(6))
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("Cholesky failed on SPD matrix")
	}
	if !MulBT(l, l).EqualApprox(a, 1e-9) {
		t.Fatal("LLᵀ != A")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, ok := Cholesky(a); ok {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	s := rng.New(15)
	b := randomDense(s, 5, 5)
	a := MulTA(b, b)
	AddInPlace(a, Identity(5))
	rhs := []float64{1, 2, 3, 4, 5}
	x, ok := SolveSPD(a, rhs)
	if !ok {
		t.Fatal("SolveSPD failed")
	}
	res := VecSub(MatVec(a, x), rhs)
	if Norm2(res) > 1e-9 {
		t.Fatalf("SolveSPD residual %v", Norm2(res))
	}
}

func TestInvertSPD(t *testing.T) {
	s := rng.New(16)
	b := randomDense(s, 4, 4)
	a := MulTA(b, b)
	AddInPlace(a, Identity(4))
	inv, ok := InvertSPD(a)
	if !ok {
		t.Fatal("InvertSPD failed")
	}
	if !Mul(a, inv).EqualApprox(Identity(4), 1e-9) {
		t.Fatal("A * A⁻¹ != I")
	}
}

func BenchmarkQR64(b *testing.B) {
	s := rng.New(1)
	a := randomDense(s, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QR(a)
	}
}
