// Package linalg implements the dense linear algebra needed by ESSE:
// matrix arithmetic with goroutine-parallel multiplication, Householder
// QR, Cholesky factorization, a symmetric Jacobi eigensolver, and
// singular value decompositions (one-sided Jacobi for general matrices
// and a Gram-matrix thin SVD for the tall ensemble anomaly matrices that
// dominate ESSE workloads).
//
// The paper offloads these operations to shared-memory LAPACK; this
// package is the stdlib-only replacement. All algorithms are validated
// by property tests (reconstruction, orthogonality, positive
// semi-definiteness) in the package test suite.
package linalg

import (
	"fmt"
	"math"
	"strconv"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense returns a zero-initialized r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFrom wraps data (row-major) without copying. It panics if
// len(data) != r*c.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into dst (allocated if nil) and returns it. It
// panics if j is out of range or a non-nil dst is shorter than Rows.
func (m *Dense) Col(dst []float64, j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: Col index %d out of range for %dx%d", j, m.Rows, m.Cols))
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	if len(dst) < m.Rows {
		panic(fmt.Sprintf("linalg: Col destination length %d, need %d rows", len(dst), m.Rows))
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// SetCol writes v into column j. It panics if j is out of range or
// len(v) != Rows.
func (m *Dense) SetCol(j int, v []float64) {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: SetCol index %d out of range for %dx%d", j, m.Rows, m.Cols))
	}
	if len(v) != m.Rows {
		panic(fmt.Sprintf("linalg: SetCol length %d does not match %d rows", len(v), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Zero resets every element to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Slice returns a copy of the submatrix rows [r0,r1) x cols [c0,c1).
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("linalg: Slice [%d:%d, %d:%d) out of range for %dx%d",
			r0, r1, c0, c1, m.Rows, m.Cols))
	}
	s := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), m.Row(i)[c0:c1])
	}
	return s
}

// AppendCols returns [m | b] as a new matrix.
func (m *Dense) AppendCols(b *Dense) *Dense {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("linalg: AppendCols row mismatch: %d vs %d", m.Rows, b.Rows))
	}
	out := NewDense(m.Rows, m.Cols+b.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:m.Cols], m.Row(i))
		copy(out.Row(i)[m.Cols:], b.Row(i))
	}
	return out
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobNorm returns the Frobenius norm.
func (m *Dense) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	t := 0.0
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element is finite.
func (m *Dense) IsFinite() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	// "% .4e " renders 12 bytes per element; build into one buffer
	// instead of concatenating per cell.
	buf := make([]byte, 0, m.Rows*(12*m.Cols+1))
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			if !math.Signbit(v) {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendFloat(buf, v, 'e', 4, 64)
			buf = append(buf, ' ')
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
