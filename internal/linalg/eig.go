package linalg

import (
	"math"
	"sort"
)

// EigSym holds the spectral decomposition A = V diag(Values) Vᵀ of a
// symmetric matrix, with eigenvalues sorted in descending order and the
// columns of Vectors holding the corresponding orthonormal eigenvectors.
type EigSym struct {
	Values  []float64
	Vectors *Dense
}

// SymEig computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. The input must be square; only the
// values on and above the diagonal are trusted (the matrix is symmetrized
// internally to guard against round-off asymmetry).
func SymEig(a *Dense) *EigSym {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: SymEig requires a square matrix")
	}
	// Work on a symmetrized copy.
	w := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	v := Identity(n)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.FrobNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Stable computation of the rotation (Golub & Van Loan).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	col := make([]float64, n)
	for out, in := range idx {
		sortedVals[out] = vals[in]
		v.Col(col, in)
		sortedVecs.SetCol(out, col)
	}
	return &EigSym{Values: sortedVals, Vectors: sortedVecs}
}

// applyJacobiRotation applies the two-sided rotation J(p,q,c,s) to w
// (w = JᵀwJ) and accumulates it into the eigenvector matrix v (v = vJ).
func applyJacobiRotation(w, v *Dense, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(w *Dense) float64 {
	n := w.Rows
	s := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.At(i, j)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}
