package linalg

import (
	"fmt"
	"math"
)

// LUFactors holds a P·A = L·U factorization with partial pivoting. L is
// unit-lower-triangular and U upper-triangular, packed into one matrix;
// Piv records the row permutation; Sign is the permutation's parity.
type LUFactors struct {
	LU   *Dense
	Piv  []int
	Sign float64
}

// LU computes the factorization of a square matrix with partial
// pivoting. It returns an error for singular (to working precision)
// matrices.
func LU(a *Dense) (*LUFactors, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: largest magnitude in column k at/below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at pivot %d", k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			//esselint:allow divguard partial pivoting: |At(k,k)| = max > 0 after the row swap, guarded above
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LUFactors{LU: lu, Piv: piv, Sign: sign}, nil
}

// Solve returns x with A x = b.
func (f *LUFactors) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.LU.Rows), b)
}

// SolveInto solves A x = b into a caller-supplied x (len n), returning
// it. b and x must not alias. It allocates nothing, so repeated solves
// against one factorization can reuse a single buffer.
func (f *LUFactors) SolveInto(x, b []float64) []float64 {
	n := f.LU.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: LU Solve dimension mismatch")
	}
	// Apply permutation, then forward substitution with unit L.
	for i := 0; i < n; i++ {
		x[i] = b[f.Piv[i]]
	}
	for i := 0; i < n; i++ {
		row := f.LU.Row(i)
		for j := 0; j < i; j++ {
			x[i] -= row[j] * x[j]
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.LU.Row(i)
		for j := i + 1; j < n; j++ {
			x[i] -= row[j] * x[j]
		}
		//esselint:allow divguard U's diagonal is nonzero whenever Factor succeeded (zero pivots error out)
		x[i] /= row[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LUFactors) Det() float64 {
	d := f.Sign
	for i := 0; i < f.LU.Rows; i++ {
		d *= f.LU.At(i, i)
	}
	return d
}

// SolveGeneral solves A x = b for a general square matrix.
func SolveGeneral(a *Dense, b []float64) ([]float64, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Invert returns A⁻¹ for a general square matrix.
func Invert(a *Dense) (*Dense, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		inv.SetCol(j, f.SolveInto(x, e))
	}
	return inv, nil
}

// SolveTridiagonal solves a tridiagonal system with the Thomas
// algorithm: sub/diag/super are the three bands (sub[0] and
// super[n-1] are ignored). It modifies no inputs and returns an error if
// a pivot vanishes (no pivoting is performed — callers must supply
// diagonally dominant systems, as implicit diffusion steps do).
func SolveTridiagonal(sub, diag, super, b []float64) ([]float64, error) {
	n := len(diag)
	x := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	if err := SolveTridiagonalInto(x, c, d, sub, diag, super, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveTridiagonalInto is SolveTridiagonal with caller-supplied
// solution vector x and scratch vectors c, d (all len n, none
// aliasing the bands or b). It allocates nothing, so per-column
// implicit-diffusion sweeps can reuse one set of buffers.
func SolveTridiagonalInto(x, c, d, sub, diag, super, b []float64) error {
	n := len(diag)
	if len(sub) != n || len(super) != n || len(b) != n || len(x) != n || len(c) != n || len(d) != n {
		return fmt.Errorf("linalg: tridiagonal band lengths disagree")
	}
	if diag[0] == 0 {
		return fmt.Errorf("linalg: zero pivot at row 0")
	}
	c[0] = super[0] / diag[0]
	d[0] = b[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - sub[i]*c[i-1]
		if den == 0 {
			return fmt.Errorf("linalg: zero pivot at row %d", i)
		}
		if i < n-1 {
			c[i] = super[i] / den
		}
		d[i] = (b[i] - sub[i]*d[i-1]) / den
	}
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return nil
}

// ConditionEstimate returns a cheap condition-number estimate of a
// square matrix: σmax/σmin from the full SVD for small systems. Intended
// for diagnostics, not hot paths.
func ConditionEstimate(a *Dense) float64 {
	f := SVD(a)
	smin := f.S[len(f.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return f.S[0] / smin
}
