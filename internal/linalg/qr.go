package linalg

import "math"

// QRFactors holds a thin QR factorization A = Q*R with Q (m×n,
// orthonormal columns) and R (n×n, upper triangular), for m >= n.
type QRFactors struct {
	Q *Dense
	R *Dense
}

// QR computes a thin Householder QR factorization of a (m >= n required).
func QR(a *Dense) *QRFactors {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("linalg: QR requires Rows >= Cols")
	}
	r := a.Clone()
	// Householder vectors stored per step, carved from one backing
	// array (vector k has length m-k, so the total is n*m - n(n-1)/2).
	vs := make([][]float64, n)
	vbuf := make([]float64, n*m-n*(n-1)/2)
	off := 0
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k below the diagonal.
		v := vbuf[off : off+m-k]
		off += m - k
		for i := k; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		alpha := Norm2(v)
		if v[0] > 0 {
			alpha = -alpha
		}
		if alpha == 0 {
			vs[k] = nil
			continue
		}
		v[0] -= alpha
		vnorm := Norm2(v)
		if vnorm == 0 {
			vs[k] = nil
			continue
		}
		for i := range v {
			v[i] /= vnorm
		}
		vs[k] = v
		// Apply the reflector to the trailing submatrix of R.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-dot*v[i-k])
			}
		}
	}
	// Accumulate thin Q by applying reflectors to the first n columns of I.
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= 2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}
	// Extract the upper-triangular n×n R, zeroing round-off below diagonal.
	rOut := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rOut.Set(i, j, r.At(i, j))
		}
	}
	return &QRFactors{Q: q, R: rOut}
}

// SolveUpperTri solves R x = b for upper-triangular R.
func SolveUpperTri(r *Dense, b []float64) []float64 {
	n := r.Rows
	if r.Cols != n || len(b) != n {
		panic("linalg: SolveUpperTri dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			panic("linalg: SolveUpperTri singular matrix")
		}
		x[i] = s / d
	}
	return x
}

// SolveLowerTri solves L x = b for lower-triangular L.
func SolveLowerTri(l *Dense, b []float64) []float64 {
	return solveLowerTriInto(make([]float64, l.Rows), l, b)
}

// solveLowerTriInto is SolveLowerTri into a caller-supplied x (len n,
// not aliasing b); it allocates nothing.
func solveLowerTriInto(x []float64, l *Dense, b []float64) []float64 {
	n := l.Rows
	if l.Cols != n || len(b) != n || len(x) != n {
		panic("linalg: SolveLowerTri dimension mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			panic("linalg: SolveLowerTri singular matrix")
		}
		x[i] = s / d
	}
	return x
}

// LeastSquares solves min ||A x - b||₂ via QR (m >= n).
func LeastSquares(a *Dense, b []float64) []float64 {
	if a.Rows != len(b) {
		panic("linalg: LeastSquares dimension mismatch")
	}
	f := QR(a)
	qtb := MatTVec(f.Q, b)
	return SolveUpperTri(f.R, qtb)
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix. ok is false if A is not (numerically)
// positive definite.
func Cholesky(a *Dense) (l *Dense, ok bool) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: Cholesky requires a square matrix")
	}
	l = NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lRowJ := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lRowJ[k] * lRowJ[k]
		}
		if d <= 0 {
			return nil, false
		}
		diag := math.Sqrt(d)
		lRowJ[j] = diag
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lRowI := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lRowI[k] * lRowJ[k]
			}
			lRowI[j] = s / diag
		}
	}
	return l, true
}

// SolveSPD solves A x = b for symmetric positive-definite A via Cholesky.
func SolveSPD(a *Dense, b []float64) ([]float64, bool) {
	l, ok := Cholesky(a)
	if !ok {
		return nil, false
	}
	y := SolveLowerTri(l, b)
	return solveCholeskyT(l, y), true
}

// solveCholeskyT solves Lᵀ x = y without forming the transpose. l must
// be a factor returned by a successful Cholesky call.
func solveCholeskyT(l *Dense, y []float64) []float64 {
	return solveCholeskyTInto(make([]float64, l.Rows), l, y)
}

// solveCholeskyTInto is solveCholeskyT into a caller-supplied x (len
// n, not aliasing y); it allocates nothing.
func solveCholeskyTInto(x []float64, l *Dense, y []float64) []float64 {
	n := l.Rows
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		//esselint:allow divguard Cholesky success guarantees a strictly positive diagonal
		x[i] = s / l.At(i, i)
	}
	return x
}

// InvertSPD returns the inverse of a symmetric positive-definite matrix.
func InvertSPD(a *Dense) (*Dense, bool) {
	n := a.Rows
	inv := NewDense(n, n)
	l, ok := Cholesky(a)
	if !ok {
		return nil, false
	}
	e := make([]float64, n)
	y := make([]float64, n)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		solveLowerTriInto(y, l, e)
		inv.SetCol(j, solveCholeskyTInto(x, l, y))
	}
	return inv, true
}
