// Package metrics provides the skill and uncertainty diagnostics used to
// evaluate ESSE runs (RMSE against truth, ensemble field statistics) and
// the field renderers that regenerate the paper's uncertainty maps
// (Figs. 5 and 6) as ASCII art and portable graymap (PGM) images.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// RMSE returns the root-mean-square difference between two vectors.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// MAE returns the mean absolute error.
func MAE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: MAE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i, v := range a {
		s += math.Abs(v - b[i])
	}
	return s / float64(len(a))
}

// FieldStats summarizes a scalar field.
type FieldStats struct {
	Min, Max, Mean, Std float64
}

// Stats computes field statistics; it panics on an empty field.
func Stats(field []float64) FieldStats {
	if len(field) == 0 {
		panic("metrics: Stats of empty field")
	}
	st := FieldStats{Min: field[0], Max: field[0]}
	sum, sumSq := 0.0, 0.0
	for _, v := range field {
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
		sumSq += v * v
	}
	n := float64(len(field))
	st.Mean = sum / n
	variance := sumSq/n - st.Mean*st.Mean
	if variance < 0 {
		variance = 0
	}
	st.Std = math.Sqrt(variance)
	return st
}

// asciiRamp orders characters from low to high field value.
const asciiRamp = " .:-=+*#%@"

// RenderASCII draws an nx×ny field as an ASCII map (row j=ny-1 printed
// first so north is up), with a linear ramp between the field min/max.
func RenderASCII(field []float64, nx, ny int) string {
	if len(field) != nx*ny {
		panic("metrics: RenderASCII dimension mismatch")
	}
	st := Stats(field)
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "min=%.4g max=%.4g mean=%.4g\n", st.Min, st.Max, st.Mean)
	for j := ny - 1; j >= 0; j-- {
		for i := 0; i < nx; i++ {
			v := (field[j*nx+i] - st.Min) / span
			idx := int(v * float64(len(asciiRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPGM encodes the field as a binary-free plain PGM (P2) image with
// 255 gray levels, row j=ny-1 first (north up).
func RenderPGM(field []float64, nx, ny int) []byte {
	if len(field) != nx*ny {
		panic("metrics: RenderPGM dimension mismatch")
	}
	st := Stats(field)
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", nx, ny)
	for j := ny - 1; j >= 0; j-- {
		for i := 0; i < nx; i++ {
			g := int((field[j*nx+i] - st.Min) / span * 255)
			if g < 0 {
				g = 0
			}
			if g > 255 {
				g = 255
			}
			fmt.Fprintf(&b, "%d ", g)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// SqrtField returns element-wise sqrt of a (variance) field, clipping
// small negatives from round-off.
func SqrtField(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if x < 0 {
			x = 0
		}
		out[i] = math.Sqrt(x)
	}
	return out
}

// Correlation returns the Pearson correlation of two fields.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("metrics: Correlation needs equal, non-empty fields")
	}
	sa, sb := Stats(a), Stats(b)
	if sa.Std == 0 || sb.Std == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		s += (a[i] - sa.Mean) * (b[i] - sb.Mean)
	}
	return s / float64(len(a)) / (sa.Std * sb.Std)
}
