package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRMSEKnown(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if RMSE(a, b) != 0 {
		t.Fatal("identical vectors must have zero RMSE")
	}
	c := []float64{2, 3, 4}
	if got := RMSE(a, c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RMSE = %v, want 1", got)
	}
}

func TestRMSEEmptyAndMismatch(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMAE(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, -1}
	if got := MAE(a, b); got != 2 {
		t.Fatalf("MAE = %v, want 2", got)
	}
}

func TestRMSEAtLeastMAEProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		zero := make([]float64, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		return RMSE(raw, zero) >= MAE(raw, zero)-1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	st := Stats([]float64{1, 2, 3, 4})
	if st.Min != 1 || st.Max != 4 || st.Mean != 2.5 {
		t.Fatalf("Stats = %+v", st)
	}
	want := math.Sqrt(1.25)
	if math.Abs(st.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", st.Std, want)
	}
}

func TestStatsConstantField(t *testing.T) {
	st := Stats([]float64{7, 7, 7})
	if st.Std != 0 || st.Mean != 7 {
		t.Fatalf("constant field stats = %+v", st)
	}
}

func TestRenderASCIIShape(t *testing.T) {
	field := make([]float64, 12)
	for i := range field {
		field[i] = float64(i)
	}
	out := RenderASCII(field, 4, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if len(l) != 4 {
			t.Fatalf("row width %d, want 4", len(l))
		}
	}
	// North (highest j) row printed first: it holds the max values.
	if !strings.Contains(lines[1], "@") {
		t.Fatalf("top row should hold the field maximum:\n%s", out)
	}
}

func TestRenderASCIIConstant(t *testing.T) {
	out := RenderASCII([]float64{5, 5, 5, 5}, 2, 2)
	if !strings.Contains(out, "min=5") {
		t.Fatalf("missing stats header: %s", out)
	}
}

func TestRenderPGMHeader(t *testing.T) {
	field := []float64{0, 1, 2, 3}
	img := string(RenderPGM(field, 2, 2))
	if !strings.HasPrefix(img, "P2\n2 2\n255\n") {
		t.Fatalf("bad PGM header: %q", img[:20])
	}
	if !strings.Contains(img, "255") || !strings.Contains(img, "0") {
		t.Fatal("PGM must span full gray range")
	}
}

func TestSqrtField(t *testing.T) {
	out := SqrtField([]float64{4, 9, -1e-15})
	if out[0] != 2 || out[1] != 3 || out[2] != 0 {
		t.Fatalf("SqrtField = %v", out)
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Correlation(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	c := []float64{4, 3, 2, 1}
	if got := Correlation(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	flat := []float64{1, 1, 1, 1}
	if got := Correlation(a, flat); got != 0 {
		t.Fatalf("correlation with constant = %v", got)
	}
}
