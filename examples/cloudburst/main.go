// Cloudburst: augmenting the home cluster with EC2 for a deadline.
//
// The paper's Section 5.4 asks when it pays to extend an ESSE ensemble
// onto Amazon EC2. This example plans a run: given an ensemble size and
// a forecast deadline, it simulates the home cluster alone and a hybrid
// home+EC2 virtual cluster (Table 2 instance performance), prices the
// cloud share with the Section 5.4.2 cost model, and compares the output
// return strategies of Section 5.3.2.
//
//	go run ./examples/cloudburst [-members 960] [-deadline 60] [-instances 20]
package main

import (
	"flag"
	"fmt"
	"log"

	"esse/internal/cluster"
	"esse/internal/remote"
	"esse/internal/sched"
)

func main() {
	members := flag.Int("members", 960, "ensemble size")
	deadlineMin := flag.Float64("deadline", 60, "forecast deadline (minutes)")
	instances := flag.Int("instances", 20, "EC2 instances to add")
	instType := flag.String("type", "c1.xlarge", "EC2 instance type")
	homeCores := flag.Int("cores", 210, "available home-cluster cores")
	flag.Parse()

	it, ok := remote.FindInstance(*instType)
	if !ok {
		log.Fatalf("unknown instance type %q", *instType)
	}
	spec := sched.ESSEJob()

	// --- Home cluster alone ---
	home := cluster.MITAvailable(*homeCores)
	cfg := sched.DefaultConfig()
	local := sched.Simulate(home, *members, spec, cfg)
	fmt.Printf("home cluster alone (%d cores): %.1f min for %d members\n",
		*homeCores, local.Makespan/60, *members)

	deadline := *deadlineMin * 60
	if local.Makespan <= deadline {
		fmt.Printf("deadline of %.0f min already met — no cloud needed.\n", *deadlineMin)
		return
	}
	fmt.Printf("deadline of %.0f min MISSED by %.1f min -> bursting to EC2\n\n",
		*deadlineMin, (local.Makespan-deadline)/60)

	// --- Hybrid: home + EC2 virtual cluster (MyCluster-style, §5.4.1) ---
	hybrid, err := remote.VirtualCluster(*homeCores, map[string]int{it.Name: *instances}, nil)
	if err != nil {
		log.Fatal(err)
	}
	hres := sched.Simulate(hybrid, *members, spec, cfg)
	fmt.Printf("hybrid home+%d x %s (%d extra cores): %.1f min\n",
		*instances, it.Name, int(it.Cores)**instances, hres.Makespan/60)
	if hres.Makespan <= deadline {
		fmt.Println("deadline met.")
	} else {
		fmt.Println("still late — raise -instances.")
	}

	// --- Price the cloud share ---
	// Members that would run on EC2 ≈ cloud-core share of the pool.
	cloudCores := float64(int(it.Cores) * *instances)
	share := cloudCores / (cloudCores + float64(*homeCores))
	cloudMembers := int(share * float64(*members))
	outGB := float64(cloudMembers) * spec.OutputMB / 1000
	cm := remote.DefaultCostModel()
	bill := cm.Cost(1.5, outGB, hres.Makespan/3600, *instances, it, false)
	fmt.Printf("\nEC2 bill (%d members in the cloud, %.2f GB back):\n", cloudMembers, outGB)
	fmt.Printf("  in $%.2f + out $%.2f + compute $%.2f = $%.2f (%.0f instance-hours)\n",
		bill.TransferInUSD, bill.TransferOutUSD, bill.ComputeUSD, bill.TotalUSD, bill.BilledHours)
	reserved := cm.Cost(1.5, outGB, hres.Makespan/3600, *instances, it, true)
	fmt.Printf("  with reserved instances: $%.2f\n", reserved.TotalUSD)

	// --- Output return strategy ---
	fmt.Println("\noutput return strategies (seconds after the batch drains):")
	tc := remote.DefaultTransferConfig()
	tc.Files = cloudMembers
	tc.FileMB = spec.OutputMB
	tc.ComputeWindow = hres.Makespan
	for _, strat := range []remote.TransferStrategy{remote.Push, remote.Pull, remote.TwoStage} {
		r := remote.SimulateTransfer(strat, tc)
		suffix := ""
		if r.GatewayOverloaded {
			suffix = "  [gateway overloaded!]"
		}
		fmt.Printf("  %-9s: %7.1f s (peak %d concurrent)%s\n",
			strat, r.CompletionAfterBatch, r.PeakConcurrency, suffix)
	}
}
