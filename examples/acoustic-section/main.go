// Acoustic section: transferring ESSE ocean uncertainty to acoustics.
//
// "Sound-propagation studies often focus on vertical sections. ESSE
// ocean physics uncertainties are transferred to acoustical
// uncertainties along such a section." This example runs a small ocean
// ensemble, extracts a sound-speed section per member, computes the
// broadband transmission-loss field for each realization, and maps the
// TL mean and standard deviation (the acoustical uncertainty).
//
//	go run ./examples/acoustic-section [-members 8] [-freq 1.0]
package main

import (
	"flag"
	"fmt"
	"log"

	"esse/internal/acoustics"
	"esse/internal/grid"
	"esse/internal/metrics"
	"esse/internal/ocean"
	"esse/internal/rng"
)

func main() {
	members := flag.Int("members", 8, "ocean ensemble size")
	freq := flag.Float64("freq", 1.0, "source frequency (kHz)")
	srcDepth := flag.Float64("source-depth", 30, "source depth (m)")
	seed := flag.Uint64("seed", 7, "random seed")
	flag.Parse()

	g := grid.MontereyBay(16, 16, 5)
	master := rng.New(*seed)

	// Ocean ensemble: jittered climatology + stochastic forcing, like
	// the ESSE perturbation step.
	fmt.Printf("running %d ocean members and extracting a zonal section...\n", *members)
	var sections []*acoustics.Section
	for m := 0; m < *members; m++ {
		st := master.Split(uint64(m))
		cfg := ocean.DefaultConfig(g)
		cfg.Climo = cfg.Climo.Jitter(st)
		model := ocean.New(cfg, st.Split(1))
		model.Run(40)
		state := model.State(nil)
		sec, err := acoustics.ExtractSection(model.Layout, state, 1, g.NY/2, g.NX-2, g.NY/2, 2*g.NX)
		if err != nil {
			log.Fatal(err)
		}
		sections = append(sections, sec)
	}

	tlCfg := acoustics.DefaultTLConfig()
	tlCfg.FreqKHz = *freq
	tlCfg.SourceDepth = *srcDepth
	stats, err := acoustics.EnsembleTL(sections, tlCfg)
	if err != nil {
		log.Fatal(err)
	}

	nr, nz := stats.Mean.TL.Rows, stats.Mean.TL.Cols
	fmt.Printf("\nsection: %.0f km range, %.0f m deep; source %.0f m @ %.1f kHz\n",
		sections[0].Ranges[len(sections[0].Ranges)-1]/1000,
		sections[0].Depths[len(sections[0].Depths)-1], *srcDepth, *freq)

	// The TL field is range (rows) × depth (cols); transpose for display
	// so depth increases downward.
	meanT := stats.Mean.TL.T()
	stdT := stats.Std.TL.T()
	flip := func(d []float64, nx, ny int) []float64 {
		// RenderASCII prints row ny-1 first; flip so depth 0 is on top.
		out := make([]float64, len(d))
		for j := 0; j < ny; j++ {
			copy(out[(ny-1-j)*nx:(ny-j)*nx], d[j*nx:(j+1)*nx])
		}
		return out
	}
	fmt.Println("\nmean transmission loss (dB; darker = quieter):")
	fmt.Print(metrics.RenderASCII(flip(meanT.Data, nr, nz), nr, nz))
	fmt.Println("\nTL uncertainty from the ocean ensemble (dB std-dev):")
	fmt.Print(metrics.RenderASCII(flip(stdT.Data, nr, nz), nr, nz))

	st := metrics.Stats(stats.Std.TL.Data)
	fmt.Printf("\nTL std-dev: max %.1f dB, mean %.1f dB — ocean uncertainty has become\n", st.Max, st.Mean)
	fmt.Println("acoustical uncertainty, ready for coupled physical-acoustical assimilation.")
}
