// Quickstart: the smallest complete ESSE run.
//
// It builds a laptop-scale twin experiment (stochastic ocean model +
// synthetic AOSN-II observation network), runs one forecast/assimilation
// cycle with the parallel MTC ensemble engine, and prints the skill
// numbers and an uncertainty map.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"esse/internal/core"
	"esse/internal/metrics"
	"esse/internal/realtime"
)

func main() {
	// 1. Configure a small twin experiment. DefaultConfig gives a
	//    Monterey-Bay-like domain; shrink it so this runs in seconds.
	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 12, 12, 4
	cfg.Cycles = 1
	cfg.Ensemble.InitialSize = 12 // first ensemble size N
	cfg.Ensemble.MaxSize = 32     // Nmax if convergence needs more
	cfg.Ensemble.Workers = 4      // concurrent forecast tasks
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{
		MinSimilarity:     0.9, // subspace similarity rho threshold
		MaxVarianceChange: 0.3,
	}

	// 2. Build the system: truth ocean, observation network, initial
	//    error subspace from climatological uncertainty.
	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state dimension %d, %d observations per batch\n",
		sys.Layout.Dim(), sys.Network.Len())

	// 3. Run one cycle: ensemble uncertainty prediction + assimilation.
	r, err := sys.RunCycle(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble: %d members, %d SVD rounds, converged=%v (rho=%.3f)\n",
		r.Ensemble.MembersUsed, r.Ensemble.SVDRounds, r.Ensemble.Converged, r.Ensemble.Rho)
	fmt.Printf("temperature RMSE vs truth: forecast %.3f degC -> analysis %.3f degC\n",
		r.RMSEForecastT, r.RMSEAnalysisT)

	// 4. Map the predicted SST uncertainty (the Fig. 5 quantity).
	sst, err := sys.UncertaintyField("T", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted SST uncertainty (degC std-dev):")
	fmt.Print(metrics.RenderASCII(sst, cfg.NX, cfg.NY))
}
