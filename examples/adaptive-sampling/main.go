// Adaptive sampling: steering the observing system with ESSE.
//
// The paper's Section 7 singles out "the intelligent coordination of
// autonomous ocean sampling networks" as a prime MTC application to
// combine with ESSE uncertainty estimates. This example runs the same
// twin experiment twice — once with the static AOSN-II network, once
// adding a few adaptively planned CTD casts per cycle (greedy expected-
// variance-reduction in the forecast subspace) — and compares skill.
//
//	go run ./examples/adaptive-sampling [-cycles 3] [-casts 5]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"esse/internal/core"
	"esse/internal/realtime"
)

func main() {
	cycles := flag.Int("cycles", 3, "forecast/assimilation cycles")
	casts := flag.Int("casts", 5, "adaptive CTD casts per cycle")
	seed := flag.Uint64("seed", 11, "random seed")
	flag.Parse()

	run := func(adaptiveCasts int) ([]*realtime.CycleResult, error) {
		cfg := realtime.DefaultConfig()
		cfg.NX, cfg.NY, cfg.NZ = 14, 14, 4
		cfg.Cycles = *cycles
		cfg.Seed = *seed
		cfg.AdaptiveCasts = adaptiveCasts
		cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.92, MaxVarianceChange: 0.3}
		sys, err := realtime.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		return sys.Run(context.Background())
	}

	static, err := run(0)
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := run(*casts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("twin experiment, %d cycles, same seed; adaptive adds %d planned casts/cycle\n\n",
		*cycles, *casts)
	fmt.Printf("%-6s | %-21s | %-21s\n", "", "static network", fmt.Sprintf("static + %d casts", *casts))
	fmt.Printf("%-6s | %9s %9s | %9s %9s %s\n", "cycle", "rmseF", "rmseA", "rmseF", "rmseA", "cast locations")
	sumS, sumA := 0.0, 0.0
	for k := range static {
		s, a := static[k], adaptive[k]
		sumS += s.RMSEAnalysisT
		sumA += a.RMSEAnalysisT
		fmt.Printf("%-6d | %9.4f %9.4f | %9.4f %9.4f %v\n",
			k, s.RMSEForecastT, s.RMSEAnalysisT, a.RMSEForecastT, a.RMSEAnalysisT, a.AdaptiveCasts)
	}
	fmt.Printf("\nmean analysis RMSE: static %.4f degC, adaptive %.4f degC", sumS/float64(*cycles), sumA/float64(*cycles))
	if sumA < sumS {
		fmt.Printf("  (%.0f%% better)\n", (1-sumA/sumS)*100)
	} else {
		fmt.Println("  (no improvement this seed; casts target variance, noise realizations differ)")
	}
}
