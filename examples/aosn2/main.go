// AOSN-II reanalysis: the paper's Section 6 experiment as a twin study.
//
// The Autonomous Ocean Sampling Network II exercise (Monterey Bay,
// Aug-Sep 2003) assimilated CTD, AUV, glider and satellite SST data with
// HOPS/ESSE in real time. This example repeats the computational pattern:
// several forecast/assimilation cycles over a Monterey-Bay-like domain
// with a multi-platform synthetic observation network, adaptive ensemble
// sizes, and the Fig. 5/6 uncertainty maps (written as PGM images).
//
//	go run ./examples/aosn2 [-cycles 4] [-out /tmp/aosn2]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"esse/internal/core"
	"esse/internal/metrics"
	"esse/internal/obs"
	"esse/internal/realtime"
)

func main() {
	cycles := flag.Int("cycles", 4, "forecast/assimilation cycles")
	outDir := flag.String("out", "", "directory for PGM uncertainty maps (optional)")
	smooth := flag.Bool("smooth", false, "also reanalyze each cycle's start state (ESSE smoother)")
	seed := flag.Uint64("seed", 2003, "random seed (AOSN-II vintage)")
	flag.Parse()

	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 16, 16, 5
	cfg.Cycles = *cycles
	cfg.StepsPerCycle = 30
	cfg.Seed = *seed
	cfg.Ensemble.InitialSize = 16
	cfg.Ensemble.MaxSize = 64
	cfg.Ensemble.Workers = 8
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.92, MaxVarianceChange: 0.3}
	cfg.Smooth = *smooth

	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("AOSN-II style reanalysis, Monterey Bay domain")
	fmt.Printf("grid %dx%dx%d (state dim %d)\n", cfg.NX, cfg.NY, cfg.NZ, sys.Layout.Dim())
	fmt.Print("observation platforms: ")
	counts := sys.Network.CountByPlatform()
	for _, p := range []obs.Platform{obs.SatelliteSST, obs.CTD, obs.AUV, obs.Glider} {
		fmt.Printf("%s=%d ", p, counts[p])
	}
	fmt.Printf("(total %d)\n\n", sys.Network.Len())

	fmt.Printf("%-6s %9s %9s %8s %9s %6s\n", "cycle", "rmseF(T)", "rmseA(T)", "members", "poolSizes", "rho")
	for k := 0; k < cfg.Cycles; k++ {
		r, err := sys.RunCycle(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %9.4f %9.4f %8d %9v %6.3f",
			r.Cycle, r.RMSEForecastT, r.RMSEAnalysisT,
			r.Ensemble.MembersUsed, r.Ensemble.PoolSizes, r.Ensemble.Rho)
		if *smooth {
			fmt.Printf("  smoother: start %.4f -> %.4f", r.RMSEStartT, r.RMSESmoothedStartT)
		}
		fmt.Println()
	}

	sst, err := sys.UncertaintyField("T", 0)
	if err != nil {
		log.Fatal(err)
	}
	lvl := sys.LevelNearestDepth(30)
	deep, err := sys.UncertaintyField("T", lvl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nESSE uncertainty forecast, sea-surface temperature (Fig 5 analog):")
	fmt.Print(metrics.RenderASCII(sst, cfg.NX, cfg.NY))
	fmt.Printf("\nESSE uncertainty forecast, ~30 m temperature (Fig 6 analog, level %d):\n", lvl)
	fmt.Print(metrics.RenderASCII(deep, cfg.NX, cfg.NY))

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		f5 := filepath.Join(*outDir, "fig5_sst_std.pgm")
		f6 := filepath.Join(*outDir, "fig6_30m_std.pgm")
		if err := os.WriteFile(f5, metrics.RenderPGM(sst, cfg.NX, cfg.NY), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(f6, metrics.RenderPGM(deep, cfg.NX, cfg.NY), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s and %s\n", f5, f6)
	}

	fmt.Println("\nforecasting timelines (Fig 1 analog):")
	fmt.Print(sys.Tl.Render(60))
}
