// Ablation benchmarks for the design choices DESIGN.md calls out:
// streaming vs batched SVD cadence, the on-disk triple-file covariance
// protocol vs in-memory exchange, job arrays vs singleton submissions,
// the convergence cancellation policy, Gram-based thin SVD vs one-sided
// Jacobi on ensemble-shaped matrices, and the output transfer
// strategies.
package esse_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"esse/internal/adaptive"
	"esse/internal/cluster"
	"esse/internal/core"
	"esse/internal/covstore"
	"esse/internal/linalg"
	"esse/internal/realtime"
	"esse/internal/remote"
	"esse/internal/rng"
	"esse/internal/sched"
	"esse/internal/workflow"
)

// ablationSubspace builds the toy truth used by the workflow ablations.
func ablationSubspace(seed uint64, dim, p int) *core.Subspace {
	s := rng.New(seed)
	a := linalg.NewDense(dim, p)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sigma := make([]float64, p)
	for i := range sigma {
		sigma[i] = float64(p - i)
	}
	return &core.Subspace{Modes: f.Q, Sigma: sigma}
}

func ablationRunner(truth *core.Subspace, seed uint64, delay time.Duration) workflow.MemberRunner {
	master := rng.New(seed)
	return func(ctx context.Context, index int) ([]float64, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return truth.Perturb(nil, master.Split(uint64(index)), 0.01), nil
	}
}

func ablationConfig(members int) workflow.Config {
	cfg := workflow.DefaultConfig()
	cfg.InitialSize = members
	cfg.MaxSize = members
	cfg.Workers = 8
	cfg.SVDBatch = members / 4
	cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 2} // fixed workload
	return cfg
}

// BenchmarkAblationSVDCadence sweeps the SVD batch size: small batches
// give earlier convergence detection at higher SVD cost; one terminal
// SVD is the Fig. 3 behaviour.
func BenchmarkAblationSVDCadence(b *testing.B) {
	truth := ablationSubspace(1, 200, 4)
	for _, batch := range []int{4, 16, 64} {
		b.Run(byName("batch", batch), func(b *testing.B) {
			cfg := ablationConfig(64)
			cfg.SVDBatch = batch
			runner := ablationRunner(truth, 2, 0)
			for i := 0; i < b.N; i++ {
				res, err := workflow.RunParallel(context.Background(), cfg, make([]float64, 200), runner)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.SVDRounds), "svd-rounds")
				}
			}
		})
	}
}

// BenchmarkAblationTripleFileStore measures the cost of routing anomaly
// snapshots through the on-disk triple-file protocol versus keeping them
// in memory (the protocol buys crash-safe decoupling of the diff and SVD
// stages at the cost of serialization I/O).
func BenchmarkAblationTripleFileStore(b *testing.B) {
	truth := ablationSubspace(3, 400, 4)
	run := func(b *testing.B, store *covstore.Store) {
		cfg := ablationConfig(32)
		cfg.Store = store
		runner := ablationRunner(truth, 4, 0)
		for i := 0; i < b.N; i++ {
			if _, err := workflow.RunParallel(context.Background(), cfg, make([]float64, 400), runner); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, nil) })
	b.Run("triple-file", func(b *testing.B) {
		store, err := covstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, store)
	})
}

// BenchmarkAblationCancelPolicy compares the two §4.1 convergence
// policies: immediate cancellation wastes running members but finishes
// sooner; drain-and-use keeps them and refines the final SVD.
func BenchmarkAblationCancelPolicy(b *testing.B) {
	truth := ablationSubspace(5, 150, 3)
	for _, policy := range []workflow.DrainPolicy{workflow.CancelImmediately, workflow.DrainAndUse} {
		name := "cancel-immediately"
		if policy == workflow.DrainAndUse {
			name = "drain-and-use"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ablationConfig(128)
			cfg.SVDBatch = 8
			cfg.Policy = policy
			cfg.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.3, MaxVarianceChange: 0.9}
			runner := ablationRunner(truth, 6, time.Millisecond)
			for i := 0; i < b.N; i++ {
				res, err := workflow.RunParallel(context.Background(), cfg, make([]float64, 150), runner)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.MembersUsed), "members-used")
					b.ReportMetric(float64(res.MembersCancelled), "members-cancelled")
				}
			}
		})
	}
}

// BenchmarkAblationJobArrays quantifies the scheduler-strain argument
// for job arrays versus one submission per perturbation index.
func BenchmarkAblationJobArrays(b *testing.B) {
	c := cluster.MITAvailable(210)
	for _, array := range []bool{true, false} {
		name := "job-array"
		if !array {
			name = "singletons"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sched.DefaultConfig()
			cfg.JobArray = array
			for i := 0; i < b.N; i++ {
				res := sched.Simulate(c, 600, sched.ESSEJob(), cfg)
				if i == 0 {
					b.ReportMetric(res.Makespan/60, "makespan-min")
				}
			}
		})
	}
}

// BenchmarkAblationThinSVD compares the two SVD algorithms on the
// ensemble-shaped (very tall) anomaly matrices ESSE produces: the Gram
// approach does one pass over the tall matrix plus an n×n eigenproblem;
// one-sided Jacobi sweeps the tall columns repeatedly.
func BenchmarkAblationThinSVD(b *testing.B) {
	s := rng.New(7)
	a := linalg.NewDense(4000, 48)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	b.Run("gram-thin-svd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.ThinSVDGram(a, 48)
		}
	})
	b.Run("one-sided-jacobi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.SVD(a)
		}
	})
}

// BenchmarkAblationTransferStrategy evaluates the §5.3.2 output return
// strategies for the 960-member EC2 scenario.
func BenchmarkAblationTransferStrategy(b *testing.B) {
	for _, strat := range []remote.TransferStrategy{remote.Push, remote.Pull, remote.TwoStage} {
		b.Run(strat.String(), func(b *testing.B) {
			cfg := remote.DefaultTransferConfig()
			for i := 0; i < b.N; i++ {
				res := remote.SimulateTransfer(strat, cfg)
				if i == 0 {
					b.ReportMetric(res.CompletionAfterBatch, "tail-seconds")
				}
			}
		})
	}
}

func byName(prefix string, v int) string {
	return fmt.Sprintf("%s-%d", prefix, v)
}

// BenchmarkAblationBatchedSingletons quantifies the §5.3.4 batching
// refactor under Condor's expensive dispatch: batches amortize
// negotiation waits and input reads at the cost of tail granularity.
func BenchmarkAblationBatchedSingletons(b *testing.B) {
	c := cluster.MITAvailable(210)
	for _, batch := range []int{1, 2, 4} {
		b.Run(byName("batch", batch), func(b *testing.B) {
			cfg := sched.DefaultConfig()
			cfg.Policy = sched.Condor
			cfg.IOMode = sched.MixedNFS
			cfg.PrestageMB = 0
			for i := 0; i < b.N; i++ {
				res := sched.SimulateBatched(c, 600, sched.ESSEJob(), cfg, batch)
				if i == 0 {
					b.ReportMetric(res.Makespan/60, "makespan-min")
					b.ReportMetric(res.NFSMBMoved/1000, "nfs-GB")
				}
			}
		})
	}
}

// BenchmarkAblationAdaptivePlanner compares the sequential greedy
// planner against the naive top-k-variance ranking on a correlated
// subspace: the metric is the exact expected variance reduction of the
// chosen batch.
func BenchmarkAblationAdaptivePlanner(b *testing.B) {
	s := rng.New(9)
	dim := 200
	a := linalg.NewDense(dim, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < dim; i++ {
			a.Set(i, j, 1/(1+0.05*float64((i-40*j)*(i-40*j)))+0.05*s.Norm())
		}
	}
	f := linalg.QR(a)
	sub := &core.Subspace{Modes: f.Q, Sigma: []float64{4, 3, 2, 1}}
	var cands []adaptive.Candidate
	for off := 0; off < dim; off += 2 {
		cands = append(cands, adaptive.Candidate{Offset: off, Stddev: 0.3})
	}
	b.Run("greedy", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			plan, err := adaptive.Greedy(sub, cands, 6)
			if err != nil {
				b.Fatal(err)
			}
			last = plan.Reduction[len(plan.Reduction)-1]
		}
		b.ReportMetric(last, "variance-reduced")
	})
	b.Run("naive-topk", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			order := adaptive.RankCandidatesByVariance(sub, cands)[:6]
			// Evaluate the naive batch with the same exact formula.
			picked := make([]adaptive.Candidate, len(order))
			for k, ci := range order {
				picked[k] = cands[ci]
			}
			plan, err := adaptive.Greedy(sub, picked, len(picked))
			if err != nil {
				b.Fatal(err)
			}
			last = plan.Reduction[len(plan.Reduction)-1]
		}
		b.ReportMetric(last, "variance-reduced")
	})
}

// BenchmarkAblationEnsembleVsDeterministic compares the two uncertainty
// forecast mechanisms of the realtime system: the stochastic MTC
// ensemble and the DO-style deterministic subspace propagation (p+1
// quiet model runs).
func BenchmarkAblationEnsembleVsDeterministic(b *testing.B) {
	base := realtime.DefaultConfig()
	base.NX, base.NY, base.NZ = 12, 12, 4
	base.Cycles = 1
	base.StepsPerCycle = 15
	base.Ensemble.InitialSize = 16
	base.Ensemble.MaxSize = 16
	base.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 2}
	for _, det := range []bool{false, true} {
		name := "stochastic-ensemble"
		if det {
			name = "deterministic-DO"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Deterministic = det
				sys, err := realtime.NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sys.RunCycle(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(r.Ensemble.MembersUsed), "model-runs")
					b.ReportMetric(r.RMSEAnalysisT, "rmseA-degC")
				}
			}
		})
	}
}
