// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark drives the corresponding experiment
// in internal/experiments and reports the headline quantities through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the rows
// the paper reports (see EXPERIMENTS.md for the paper-vs-measured
// comparison).
package esse_test

import (
	"testing"
	"time"

	"esse/internal/core"
	"esse/internal/experiments"
	"esse/internal/realtime"
	"esse/internal/trace"
)

// benchRealtimeConfig returns the twin-experiment setup used by the
// figure benchmarks (kept small so the full suite runs in minutes).
func benchRealtimeConfig() realtime.Config {
	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 12, 12, 4
	cfg.Cycles = 2
	cfg.StepsPerCycle = 15
	cfg.Ensemble.InitialSize = 12
	cfg.Ensemble.MaxSize = 24
	cfg.Ensemble.SVDBatch = 6
	cfg.Ensemble.Workers = 8
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.9, MaxVarianceChange: 0.3}
	return cfg
}

// BenchmarkFig1Timelines regenerates the three Fig. 1 forecasting
// timelines (observation, forecaster, simulation time) from a real-time
// twin experiment.
func BenchmarkFig1Timelines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tl, _, err := experiments.Fig1Timelines(benchRealtimeConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tl.Len()), "spans")
			b.ReportMetric(tl.Makespan(trace.ObservationTime), "ocean-seconds")
		}
	}
}

// BenchmarkFig2ESSECycle runs one full ESSE cycle (Fig. 2): perturb →
// stochastic ensemble → continuous SVD → convergence → assimilation.
func BenchmarkFig2ESSECycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig2ESSECycle(benchRealtimeConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Cycle.Ensemble.MembersUsed), "members")
			b.ReportMetric(res.Cycle.Ensemble.Rho, "rho")
			b.ReportMetric(res.Cycle.RMSEForecastT, "rmseF-degC")
			b.ReportMetric(res.Cycle.RMSEAnalysisT, "rmseA-degC")
		}
	}
}

// BenchmarkFig3Serial measures the serial reference implementation of
// Fig. 3 (no exposed parallelism; batch-blocking diff and SVD stages).
func BenchmarkFig3Serial(b *testing.B) {
	cfg := benchRealtimeConfig()
	cfg.Serial = true
	cfg.Cycles = 1
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig2ESSECycle(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Cycle.Ensemble.Elapsed)/1e6, "ensemble-ms")
		}
	}
}

// BenchmarkFig4Parallel measures the parallel MTC implementation of
// Fig. 4 on the identical workload as BenchmarkFig3Serial.
func BenchmarkFig4Parallel(b *testing.B) {
	cfg := benchRealtimeConfig()
	cfg.Cycles = 1
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig2ESSECycle(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Cycle.Ensemble.Elapsed)/1e6, "ensemble-ms")
		}
	}
}

// BenchmarkFig3Fig4Speedup runs the controlled serial-vs-parallel
// comparison (identical member set, emulated forecast cost) and reports
// the MTC speedup and subspace agreement.
func BenchmarkFig3Fig4Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig3Fig4Comparison(24, 8, 2*time.Millisecond, 60, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup, "speedup")
			b.ReportMetric(res.SubspaceAgree, "subspace-rho")
		}
	}
}

// BenchmarkTable1TeragridHosts regenerates Table 1 (pert/pemodel seconds
// per TeraGrid platform).
func BenchmarkTable1TeragridHosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table1()
		if i == 0 {
			for _, r := range rows {
				if r.Site == "ORNL" {
					b.ReportMetric(r.Pert, "ORNL-pert-s")
					b.ReportMetric(r.Model, "ORNL-pemodel-s")
				}
			}
		}
	}
}

// BenchmarkTable2EC2Instances regenerates Table 2 (pert/pemodel seconds
// per EC2 instance type, worst of a full-instance batch).
func BenchmarkTable2EC2Instances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table2()
		if i == 0 {
			for _, r := range rows {
				if r.Instance == "c1.xlarge" {
					b.ReportMetric(r.Pert, "c1.xlarge-pert-s")
					b.ReportMetric(r.Model, "c1.xlarge-pemodel-s")
				}
			}
		}
	}
}

// BenchmarkLocalClusterTimings regenerates the §5.2.1 measurements: 600
// members on ~210 cores under all-local vs mixed-NFS I/O and SGE vs
// Condor, plus the 6000-job acoustics ensemble.
func BenchmarkLocalClusterTimings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.LocalTimings(600, 6000, 210, uint64(i+1))
		if i == 0 {
			b.ReportMetric(res.LocalSGE.Makespan/60, "local-min")
			b.ReportMetric(res.MixedSGE.Makespan/60, "mixedNFS-min")
			b.ReportMetric(res.LocalCondor.Makespan/60, "condor-min")
			b.ReportMetric(res.MixedSGE.PertCPUUtilization*100, "pert-util-pct")
			b.ReportMetric(res.Acoustics.Makespan/60, "acoustics-min")
		}
	}
}

// BenchmarkEC2Cost regenerates the §5.4.2 worked cost example
// ($33.95 for 960 members on 20 c1.xlarge for 2 hours).
func BenchmarkEC2Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bill, _ := experiments.CostExample()
		if i == 0 {
			b.ReportMetric(bill.TotalUSD, "total-USD")
			b.ReportMetric(bill.ComputeUSD, "compute-USD")
		}
	}
}

// BenchmarkFig5SSTUncertainty regenerates the Fig. 5 sea-surface
// temperature uncertainty map from the AOSN-II-style twin experiment.
func BenchmarkFig5SSTUncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig5Fig6Uncertainty(benchRealtimeConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			max := 0.0
			for _, v := range res.SST {
				if v > max {
					max = v
				}
			}
			b.ReportMetric(max, "max-SST-std-degC")
		}
	}
}

// BenchmarkFig6SubsurfaceUncertainty regenerates the Fig. 6 ~30 m
// temperature uncertainty map.
func BenchmarkFig6SubsurfaceUncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig5Fig6Uncertainty(benchRealtimeConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			max := 0.0
			for _, v := range res.Deep {
				if v > max {
					max = v
				}
			}
			b.ReportMetric(max, "max-30m-std-degC")
			b.ReportMetric(float64(res.DeepLvl), "level")
		}
	}
}
