#!/bin/sh
# verify.sh — the repository's standing gate: build, vet, the custom
# esselint determinism/numerical-safety/concurrency analyzers, the
# suppression audit, and the race-enabled test suite. CI runs exactly
# this; run it locally before sending a change.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> esselint -stats -escapes ./... (determinism, numerics, concurrency, allocation analyzers + compiler escape-fact cross-check)"
go run ./cmd/esselint -vet=false -stats -escapes ./...

echo "==> esselint self-hosting gate (internal/lint + cmd/esselint)"
go run ./cmd/esselint -vet=false ./internal/lint/... ./cmd/esselint/...

echo "==> esselint -audit ./... (every suppression must carry a reason)"
go run ./cmd/esselint -audit -vet=false ./... >/dev/null

echo "==> go test -race ./..."
go test -race ./...

echo "==> telemetry smoke (mtc-sim /metrics scrape via promscrape)"
./scripts/smoke_metrics.sh

echo "verify: all gates passed"
