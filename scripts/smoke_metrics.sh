#!/bin/sh
# smoke_metrics.sh — the telemetry smoke gate: run a short mtc-sim with
# the telemetry server enabled, scrape /metrics while the run holds the
# server open, and strictly parse the exposition with cmd/promscrape
# (which exits non-zero on any malformed line or missing family). CI
# runs this so the /metrics surface can never silently rot into
# something a Prometheus scraper rejects.
#
#   scripts/smoke_metrics.sh            default address 127.0.0.1:19309
#   SMOKE_ADDR=:9999 scripts/smoke_metrics.sh
set -eu

cd "$(dirname "$0")/.."

addr="${SMOKE_ADDR:-127.0.0.1:19309}"

echo "==> mtc-sim smoke run with -telemetry-addr $addr (race detector on)"
# -race complements the static sharedguard/ctxflow/atomicmix gate with
# dynamic coverage of the interleavings this boot actually executes —
# in particular the scrape path serving /metrics while the sim runs.
go run -race ./cmd/mtc-sim -jobs 50 -cores 20 -telemetry-addr "$addr" -telemetry-hold 30s &
sim=$!
trap 'kill "$sim" 2>/dev/null || true; wait "$sim" 2>/dev/null || true' EXIT

echo "==> promscrape http://$addr/metrics"
go run ./cmd/promscrape \
    -url "http://$addr/metrics" \
    -retries 40 -wait 500ms \
    -require mtc_sim_makespan_seconds,mtc_sim_jobs,mtc_sim_pert_cpu_utilization,go_goroutines,go_heap_objects_bytes

echo "==> /events and /trace respond"
go run ./cmd/promscrape -url "http://$addr/events" -parse=false
go run ./cmd/promscrape -url "http://$addr/trace" -parse=false

# The forensics gate: esse-report fetches the live /trace, /events and
# /metrics surfaces and rebuilds the span tree. -strict fails the smoke
# on an empty tree or any orphan span — a span whose parent never made
# it into the export means broken causal propagation, not just an ugly
# trace. The digest is kept as a CI artifact (mtc-sim-digest.json) so a
# red run can be triaged without rebooting the sim.
echo "==> esse-report forensics over http://$addr"
go run ./cmd/esse-report \
    -trace "http://$addr/trace" \
    -events "http://$addr/events" \
    -metrics "http://$addr/metrics" \
    -strict -out mtc-sim-digest.json

echo "smoke_metrics: metrics endpoint is scrapeable and trace is coherent"
