#!/bin/sh
# bench.sh — the allocation-regression gate. Runs every benchmark once
# with -benchmem and feeds the stream to cmd/benchgate, which compares
# allocs/op against the committed BENCH_5.json baseline (15% relative
# tolerance plus a small absolute slack for GOMAXPROCS-dependent worker
# spawns; ns/op is recorded but never gated — wall time on shared
# runners is noise, allocation counts are not).
#
#   scripts/bench.sh           gate against BENCH_5.json
#   scripts/bench.sh -update   rewrite BENCH_5.json from this run
set -eu

cd "$(dirname "$0")/.."

mode="${1:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench=. -benchtime=1x -benchmem ./..."
go test -run='^$' -bench=. -benchtime=1x -benchmem -count=1 ./... | tee "$tmp"

if [ "$mode" = "-update" ]; then
    go run ./cmd/benchgate -baseline BENCH_5.json -update <"$tmp"
else
    go run ./cmd/benchgate -baseline BENCH_5.json -out bench-observed.json <"$tmp"
fi
