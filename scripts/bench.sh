#!/bin/sh
# bench.sh — the allocation-regression gate. Runs every benchmark once
# with -benchmem and feeds the stream to cmd/benchgate, which compares
# allocs/op against the committed BENCH_5.json baseline (15% relative
# tolerance plus a small absolute slack for GOMAXPROCS-dependent worker
# spawns; ns/op is recorded but never gated by default — wall time on
# shared runners is noise, allocation counts are not).
#
#   scripts/bench.sh             gate allocs against BENCH_5.json
#   scripts/bench.sh -update     rewrite BENCH_5.json from this run
#   scripts/bench.sh -time-gate  opt-in wall-time gate: runs -count=3 so
#                                benchgate can widen its tolerance to
#                                this machine's own repetition spread
#                                (CI stays record-only; see DESIGN §7)
set -eu

cd "$(dirname "$0")/.."

mode="${1:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

count=1
if [ "$mode" = "-time-gate" ]; then
    count=3
fi

echo "==> go test -bench=. -benchtime=1x -benchmem -count=$count ./..."
go test -run='^$' -bench=. -benchtime=1x -benchmem -count="$count" ./... | tee "$tmp"

case "$mode" in
-update)
    go run ./cmd/benchgate -baseline BENCH_5.json -update <"$tmp"
    ;;
-time-gate)
    go run ./cmd/benchgate -baseline BENCH_5.json -out bench-observed.json -time-gate <"$tmp"
    ;;
*)
    go run ./cmd/benchgate -baseline BENCH_5.json -out bench-observed.json <"$tmp"
    ;;
esac
