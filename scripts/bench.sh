#!/bin/sh
# bench.sh — the allocation-regression gate. Runs every benchmark once
# with -benchmem and feeds the stream to cmd/benchgate, which compares
# allocs/op against the committed BENCH_10.json baseline (15% relative
# tolerance plus a small absolute slack for GOMAXPROCS-dependent worker
# spawns; ns/op is recorded but never gated by default — wall time on
# shared runners is noise, allocation counts are not).
#
#   scripts/bench.sh              gate allocs against BENCH_10.json
#   scripts/bench.sh -update      rewrite BENCH_10.json from this run
#   scripts/bench.sh -time-gate   opt-in wall-time gate over the whole
#                                 suite: runs -count=3 so benchgate can
#                                 widen its tolerance to this machine's
#                                 own repetition spread
#   scripts/bench.sh -time-linalg wall-time gate over the curated
#                                 stable linalg kernels only — the
#                                 compute-bound benchmarks whose ns/op
#                                 is reproducible enough to gate in CI
#                                 (the full suite stays allocation-only;
#                                 see DESIGN §7)
set -eu

cd "$(dirname "$0")/.."

# The curated subset for -time-linalg: single-package, compute-bound,
# no scheduler or I/O in the timed loop.
linalg_stable='^(MulSmall|MulLargeParallel|LUSolve64|QR64|SVDEnsembleShape|SymEig32)$'

mode="${1:-}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

count=1
bench_pkgs=./...
case "$mode" in
-time-gate)
    count=3
    ;;
-time-linalg)
    count=3
    bench_pkgs=./internal/linalg/
    ;;
esac

echo "==> go test -bench=. -benchtime=1x -benchmem -count=$count $bench_pkgs"
go test -run='^$' -bench=. -benchtime=1x -benchmem -count="$count" "$bench_pkgs" | tee "$tmp"

case "$mode" in
-update)
    go run ./cmd/benchgate -baseline BENCH_10.json -update <"$tmp"
    ;;
-time-gate)
    go run ./cmd/benchgate -baseline BENCH_10.json -out bench-observed.json -time-gate <"$tmp"
    ;;
-time-linalg)
    go run ./cmd/benchgate -baseline BENCH_10.json -out bench-time-linalg.json \
        -time-gate -match "$linalg_stable" <"$tmp"
    ;;
*)
    go run ./cmd/benchgate -baseline BENCH_10.json -out bench-observed.json <"$tmp"
    ;;
esac
