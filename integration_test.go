// Cross-module integration tests: each test exercises a full slice of
// the system the way the paper's operational runs did — real-time
// forecasting with on-disk bookkeeping and monitoring, the ocean →
// acoustics uncertainty transfer, and the deterministic subspace
// propagation against the ensemble estimate.
package esse_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"esse/internal/acoustics"
	"esse/internal/core"
	"esse/internal/covstore"
	"esse/internal/forensics"
	"esse/internal/grid"
	"esse/internal/jobdir"
	"esse/internal/monitor"
	"esse/internal/ncdf"
	"esse/internal/ocean"
	"esse/internal/opendap"
	"esse/internal/realtime"
	"esse/internal/rng"
	"esse/internal/telemetry"
	"esse/internal/wire"
	"esse/internal/workflow"
)

func integrationConfig() realtime.Config {
	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = 10, 10, 3
	cfg.Cycles = 2
	cfg.StepsPerCycle = 10
	cfg.SnapshotCount = 6
	cfg.SnapshotStride = 4
	cfg.InitialRank = 5
	cfg.Ensemble.InitialSize = 8
	cfg.Ensemble.MaxSize = 12
	cfg.Ensemble.SVDBatch = 4
	cfg.Ensemble.Workers = 4
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.5, MaxVarianceChange: 0.9}
	return cfg
}

// TestFullOperationalStack wires the real-time system to every
// operational substrate at once: the triple-file covariance store, the
// per-member jobdir bookkeeping, and the progress monitor — then checks
// that the science (RMSE reduction) and all the bookkeeping artifacts
// come out right.
func TestFullOperationalStack(t *testing.T) {
	store, err := covstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(0)
	trackRoot := t.TempDir()

	cfg := integrationConfig()
	cfg.Ensemble.Store = store
	cfg.Ensemble.OnProgress = mon.Callback()
	trackers := map[int]*jobdir.Tracker{}
	cfg.WrapRunner = func(cycle int, r workflow.MemberRunner) workflow.MemberRunner {
		tr, err := jobdir.Open(fmt.Sprintf("%s/cycle-%d", trackRoot, cycle))
		if err != nil {
			t.Fatal(err)
		}
		trackers[cycle] = tr
		return jobdir.ResumableRunner(tr, r)
	}

	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Science: the analysis must beat the forecast at least once, and
	// the final analysis error must be far below the initial forecast
	// error.
	improved := false
	for _, r := range results {
		if r.RMSEAnalysisT < r.RMSEForecastT {
			improved = true
		}
	}
	if !improved {
		t.Fatal("assimilation never improved the temperature field")
	}
	if results[len(results)-1].RMSEAnalysisT > results[0].RMSEForecastT {
		t.Fatal("no net error reduction across cycles")
	}

	// Bookkeeping: the covariance store published snapshots; the
	// trackers recorded every used member; the monitor saw progress.
	if store.Writes() == 0 {
		t.Fatal("triple-file store never used")
	}
	for cycle, tr := range trackers {
		ok, bad, err := tr.Completed()
		if err != nil {
			t.Fatal(err)
		}
		if len(ok) < results[cycle].Ensemble.MembersUsed {
			t.Fatalf("cycle %d: tracker has %d successes, ensemble used %d",
				cycle, len(ok), results[cycle].Ensemble.MembersUsed)
		}
		if len(bad) != 0 {
			t.Fatalf("cycle %d: unexpected failures %v", cycle, bad)
		}
	}
	if _, n := mon.Latest(); n == 0 {
		t.Fatal("monitor received no updates")
	}
}

// TestOceanToAcousticsToCoupledDA runs the full interdisciplinary chain:
// ocean ensemble → sound-speed sections → TL ensemble → coupled
// subspace → acoustic data assimilation updating the ocean.
func TestOceanToAcousticsToCoupledDA(t *testing.T) {
	g := grid.MontereyBay(10, 10, 3)
	master := rng.New(7)
	scaler, err := core.NewScaler(grid.NewLayout(g, ocean.Vars(g)), core.DefaultVarScales())
	if err != nil {
		t.Fatal(err)
	}
	tlCfg := acoustics.DefaultTLConfig()
	tlCfg.NumRays = 120
	tlCfg.RangeCells, tlCfg.DepthCells = 16, 10

	var oceanZ [][]float64
	var tls []*acoustics.TLField
	for m := 0; m < 6; m++ {
		st := master.Split(uint64(m))
		cfg := ocean.DefaultConfig(g)
		cfg.Climo = cfg.Climo.Jitter(st)
		model := ocean.New(cfg, st.Split(1))
		model.RunParallel(10, 2) // members are small parallel jobs (§7)
		state := model.State(nil)
		sec, err := acoustics.ExtractSection(model.Layout, state, 1, 5, 8, 5, 12)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := acoustics.ComputeTL(sec, tlCfg)
		if err != nil {
			t.Fatal(err)
		}
		oceanZ = append(oceanZ, scaler.ToScaled(nil, state))
		tls = append(tls, tl)
	}
	ens, err := acoustics.NewCoupledEnsemble(oceanZ, tls, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	net, err := ens.NewTLNetwork([]acoustics.TLObservation{
		{RI: 4, ZI: 3, Stddev: 1}, {RI: 10, ZI: 6, Stddev: 1}, {RI: 14, ZI: 2, Stddev: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Observe a slightly quieter channel than the ensemble mean expects.
	meanTL := ens.TLPart(ens.Mean)
	y := []float64{
		meanTL[4*ens.TLCols+3] + 2,
		meanTL[10*ens.TLCols+6] + 2,
		meanTL[14*ens.TLCols+2] + 2,
	}
	prior := ens.Subspace.TotalVariance()
	an, err := ens.AssimilateTL(net, y)
	if err != nil {
		t.Fatal(err)
	}
	if an.ResidualNorm >= an.InnovationNorm {
		t.Fatal("coupled DA did not reduce the TL misfit")
	}
	if ens.Subspace.TotalVariance() >= prior {
		t.Fatal("coupled DA did not reduce uncertainty")
	}
}

// TestEnsembleVsDeterministicPropagation compares the two uncertainty
// evolution mechanisms on the same ocean flow: the MTC stochastic
// ensemble and the deterministic mode propagation. Their dominant
// forecast subspaces must substantially overlap (they estimate the same
// dynamics), with the ensemble carrying extra model-noise variance.
func TestEnsembleVsDeterministicPropagation(t *testing.T) {
	cfg := integrationConfig()
	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := sys.Subspace().Truncate(4)
	g := sys.Layout.G

	oceanCfg := ocean.DefaultConfig(g)
	scaler, err := core.NewScaler(sys.Layout, core.DefaultVarScales())
	if err != nil {
		t.Fatal(err)
	}
	steps := cfg.StepsPerCycle
	// Deterministic propagator: integrate without stochastic forcing so
	// the FD tangent is clean.
	prop := func(ctx context.Context, initialZ []float64) ([]float64, error) {
		quiet := oceanCfg
		quiet.NoiseWind, quiet.NoiseTracer = 0, 0
		m := ocean.New(quiet, rng.New(1))
		m.SetState(scaler.FromScaled(nil, initialZ))
		m.Run(steps)
		return scaler.ToScaled(nil, m.State(nil)), nil
	}
	analysisZ := scaler.ToScaled(nil, sys.Analysis())
	_, detSub, err := core.PropagateSubspace(context.Background(), prop, analysisZ, sub, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := detSub.Check(1e-6); err != nil {
		t.Fatal(err)
	}
	// Ensemble estimate of the same forecast uncertainty.
	r, err := sys.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ensSub := r.Ensemble.Subspace.Truncate(4)
	rho := core.SimilarityCoefficient(detSub, ensSub)
	if rho < 0.4 {
		t.Fatalf("deterministic and ensemble subspaces disjoint: rho = %v", rho)
	}
}

// TestOpenDAPPrestageFlow exercises the §5.3.2 input path end to end: a
// member forecast state is published by the home OpenDAP server, a
// "remote host" fetches the fields it needs and reconstructs the state
// bit-exactly.
func TestOpenDAPPrestageFlow(t *testing.T) {
	g := grid.MontereyBay(8, 8, 3)
	m := ocean.New(ocean.DefaultConfig(g), rng.New(3))
	m.Run(5)
	state := m.State(nil)
	f, err := ncdf.FromState(m.Layout, state, map[string]string{"role": "initial-conditions"})
	if err != nil {
		t.Fatal(err)
	}
	srv := opendap.NewServer()
	srv.Publish("ic", f)

	// Remote host: list → describe → fetch every variable → rebuild.
	ts := newTestHTTP(t, srv)
	c := opendap.NewClient(ts)
	rebuilt := ncdf.New()
	_ = rebuilt.AddDim("lon", g.NX)
	_ = rebuilt.AddDim("lat", g.NY)
	_ = rebuilt.AddDim("lev", g.NZ)
	for _, spec := range m.Layout.Vars {
		data, err := c.Fetch("ic", spec.Name, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		dims := []string{"lat", "lon"}
		if spec.Levels > 1 {
			dims = []string{"lev", "lat", "lon"}
		}
		if err := rebuilt.AddVar(spec.Name, dims, nil, data); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ncdf.ToState(rebuilt, m.Layout)
	if err != nil {
		t.Fatal(err)
	}
	for i := range state {
		if got[i] != state[i] {
			t.Fatalf("prestaged state differs at %d", i)
		}
	}
}

// TestCausalTraceForensics closes the observability loop over a full
// real-time run, the way cmd/esse-report does after an operational
// cycle: the exported Chrome trace must rebuild into a span tree where
// every member and phase span parent-chains to its cycle root under a
// single seed-derived trace identity, that identity must survive a
// wire round trip bit-for-bit, and the forensic digest must recover a
// non-empty critical path for every cycle.
func TestCausalTraceForensics(t *testing.T) {
	const seed = 42
	tel := telemetry.New()
	tel.Tracer().SetTraceID(telemetry.DeriveTraceID(seed))

	cfg := integrationConfig()
	cfg.Telemetry = tel
	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sys.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, tel.Tracer().ChromeEvents()); err != nil {
		t.Fatal(err)
	}
	tree, err := forensics.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("trace has %d orphan spans", len(tree.Orphans))
	}
	if len(tree.Roots) != cfg.Cycles {
		t.Fatalf("got %d roots, want one per cycle (%d)", len(tree.Roots), cfg.Cycles)
	}

	wantTrace := telemetry.DeriveTraceID(seed).String()
	members, phases := 0, 0
	for _, sp := range tree.ByID {
		if sp.TraceID != wantTrace {
			t.Fatalf("span %s/%s carries trace %q, want %q", sp.Cat, sp.Name, sp.TraceID, wantTrace)
		}
		root, ok := tree.RootChain(sp)
		if !ok || root.Cat != "realtime" || root.Base() != "cycle" {
			t.Fatalf("span %s/%s does not chain to a cycle root", sp.Cat, sp.Name)
		}
		if sp.Cat == "workflow" && sp.Base() == "member" {
			members++
		}
		if sp.Cat == "realtime" && sp.Base() != "cycle" {
			phases++
		}
	}
	if members == 0 {
		t.Fatal("no member spans in the trace")
	}
	if phases == 0 {
		t.Fatal("no phase spans in the trace")
	}

	// Wire propagation: the cycle root's identity rides a Task across
	// an encode/decode round trip unchanged.
	root := tree.Roots[0]
	task := &wire.Task{
		ID:      "t-trace",
		Kind:    wire.KindForecast,
		Member:  1,
		Seed:    seed,
		Dt:      0.5,
		Horizon: 3600,
		Trace:   wire.TraceContext{TraceID: root.TraceID, SpanID: root.SpanID},
	}
	var wbuf bytes.Buffer
	if err := wire.EncodeTask(&wbuf, task); err != nil {
		t.Fatal(err)
	}
	var got wire.Task
	if err := wire.DecodeTask(&wbuf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace.TraceID != wantTrace || got.Trace != task.Trace {
		t.Fatalf("trace context changed on the wire: %+v != %+v", got.Trace, task.Trace)
	}

	// Forensics digest: every cycle recovers a non-empty critical path
	// rooted at its cycle span, and the audit sees the emitted events.
	events := &telemetry.EventsPage{
		Total:  tel.Events().Total(),
		Oldest: tel.Events().Oldest(),
		Events: tel.Events().Snapshot(0),
	}
	var mbuf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&mbuf); err != nil {
		t.Fatal(err)
	}
	exp, err := telemetry.ParsePrometheus(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	d := forensics.BuildDigest(tree, events, exp)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.TraceID != wantTrace {
		t.Fatalf("digest trace id %q, want %q", d.TraceID, wantTrace)
	}
	if len(d.Cycles) != len(results) {
		t.Fatalf("digest has %d cycles, run produced %d", len(d.Cycles), len(results))
	}
	for _, c := range d.Cycles {
		if len(c.CriticalPath) == 0 {
			t.Fatalf("cycle %s has an empty critical path", c.Root)
		}
		if c.Members == 0 {
			t.Fatalf("cycle %s saw no member spans", c.Root)
		}
	}
	if d.Audit.Done == 0 {
		t.Fatal("audit saw no completed tasks")
	}
}
