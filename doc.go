// Package esse is the root of a from-scratch Go reproduction of
// "Many Task Computing for Multidisciplinary Ocean Sciences: Real-Time
// Uncertainty Prediction and Data Assimilation" (Evangelinos, Lermusiaux,
// Xu, Haley, Hill; MTAGS/SC 2009).
//
// The library implements Error Subspace Statistical Estimation (ESSE) —
// an ensemble-based uncertainty-prediction and data-assimilation method —
// together with every substrate the paper's evaluation depends on: a
// stochastic primitive-equation-style ocean model, an acoustic
// transmission-loss solver, a dense linear-algebra kernel (SVD et al.), a
// many-task workflow engine, and a discrete-event simulation of the local
// cluster, TeraGrid sites and Amazon EC2 used in the paper.
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for paper-versus-measured results. The root package
// hosts the benchmark harness (bench_test.go) that regenerates every
// table and figure of the paper.
package esse
