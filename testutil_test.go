package esse_test

import (
	"net/http/httptest"
	"testing"

	"esse/internal/opendap"
)

// newTestHTTP starts an httptest server for an opendap.Server and
// returns its base URL; it is torn down with the test.
func newTestHTTP(t *testing.T, srv *opendap.Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
