module esse

go 1.22
