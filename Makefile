# Standing quality gates for the ESSE reproduction. `make verify` is
# the full pipeline CI runs; the individual targets are for local use.

GO ?= go

.PHONY: build test race test-fuzz lint lint-self lint-fixtures audit vet verify bench bench-update smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — the dynamic half
# of the concurrency gate (esselint is the static half).
race:
	$(GO) test -race ./...

# test-fuzz runs each native fuzz target briefly — a smoke pass over
# the wire-boundary and directive parsers, not a soak (leave FUZZTIME
# at the default in CI; raise it locally to hunt).
FUZZTIME ?= 10s
test-fuzz:
	$(GO) test -fuzz=FuzzParsePrometheus -fuzztime=$(FUZZTIME) ./internal/telemetry
	$(GO) test -fuzz=FuzzParseTraceContext -fuzztime=$(FUZZTIME) ./internal/telemetry
	$(GO) test -fuzz=FuzzDecodeTask -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz=FuzzDecodeResult -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz=FuzzParseDirective -fuzztime=$(FUZZTIME) ./internal/lint

vet:
	$(GO) vet ./...

# lint runs the custom determinism/concurrency analyzers bundled with
# the stock vet passes (see internal/lint and cmd/esselint).
lint:
	$(GO) run ./cmd/esselint ./...

# lint-self is the self-hosting gate: the analyzers must pass over
# their own implementation (a lint suite that trips its own map-order
# or lock-discipline rules has no business enforcing them). -stats
# prints per-analyzer wall time and summary fact counts; -escapes
# cross-checks allocation findings against the compiler's escape
# analysis.
lint-self:
	$(GO) run ./cmd/esselint -vet=false -stats -escapes ./internal/lint/... ./cmd/esselint/...

# lint-fixtures runs only the analyzer fixture tests — the fast inner
# loop when developing an analyzer.
lint-fixtures:
	$(GO) test ./internal/lint -run 'Fixture|DirectivePlacement'

# audit lists every //esselint:allow[file] directive and fails if any
# is missing a reason or names an unknown analyzer.
audit:
	$(GO) run ./cmd/esselint -audit -vet=false ./...

# bench runs every benchmark once with -benchmem and fails on any
# allocs/op regression against the committed BENCH_10.json baseline.
# bench-update rewrites the baseline after a deliberate change.
bench:
	./scripts/bench.sh

bench-update:
	./scripts/bench.sh -update

# smoke boots mtc-sim with -telemetry-addr and strictly scrapes its
# /metrics, /events and /trace endpoints (scripts/smoke_metrics.sh).
smoke:
	./scripts/smoke_metrics.sh

verify:
	./scripts/verify.sh
