# Standing quality gates for the ESSE reproduction. `make verify` is
# the full pipeline CI runs; the individual targets are for local use.

GO ?= go

.PHONY: build test race lint vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — the dynamic half
# of the concurrency gate (esselint is the static half).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the custom determinism/concurrency analyzers bundled with
# the stock vet passes (see internal/lint and cmd/esselint).
lint:
	$(GO) run ./cmd/esselint ./...

verify:
	./scripts/verify.sh
