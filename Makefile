# Standing quality gates for the ESSE reproduction. `make verify` is
# the full pipeline CI runs; the individual targets are for local use.

GO ?= go

.PHONY: build test race lint lint-fixtures audit vet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector — the dynamic half
# of the concurrency gate (esselint is the static half).
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the custom determinism/concurrency analyzers bundled with
# the stock vet passes (see internal/lint and cmd/esselint).
lint:
	$(GO) run ./cmd/esselint ./...

# lint-fixtures runs only the analyzer fixture tests — the fast inner
# loop when developing an analyzer.
lint-fixtures:
	$(GO) test ./internal/lint -run 'Fixture|DirectivePlacement'

# audit lists every //esselint:allow[file] directive and fails if any
# is missing a reason or names an unknown analyzer.
audit:
	$(GO) run ./cmd/esselint -audit -vet=false ./...

verify:
	./scripts/verify.sh
