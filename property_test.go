// Property-based tests (testing/quick) over cross-cutting invariants:
// randomized inputs must never violate the conservation, monotonicity
// and round-trip guarantees the subsystems advertise.
package esse_test

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"esse/internal/cluster"
	"esse/internal/core"
	"esse/internal/covstore"
	"esse/internal/grid"
	"esse/internal/linalg"
	"esse/internal/ncdf"
	"esse/internal/obs"
	"esse/internal/rng"
	"esse/internal/sched"
)

func randomSubspaceFor(s *rng.Stream, dim, p int) *core.Subspace {
	a := linalg.NewDense(dim, p)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	f := linalg.QR(a)
	sigma := make([]float64, p)
	for i := range sigma {
		sigma[i] = float64(p-i) * (0.5 + s.Float64())
	}
	// enforce descending
	for i := 1; i < p; i++ {
		if sigma[i] > sigma[i-1] {
			sigma[i] = sigma[i-1]
		}
	}
	return &core.Subspace{Modes: f.Q, Sigma: sigma}
}

// Property: assimilation never increases total variance, always reduces
// (or preserves) the observed-space residual, and returns a structurally
// valid posterior — for any random observation set.
func TestPropertyAssimilationContracts(t *testing.T) {
	master := rng.New(101)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		g := grid.New(4+s.Intn(4), 4+s.Intn(4), 1+s.Intn(3), 1, 1, 100)
		l := grid.NewLayout(g, []grid.VarSpec{{Name: "T", Levels: g.NZ}})
		p := 2 + s.Intn(4)
		sub := randomSubspaceFor(s, l.Dim(), p)
		n := obs.NewNetwork(l)
		nObs := 1 + s.Intn(6)
		for o := 0; o < nObs; o++ {
			_ = n.Add(obs.Observation{
				Var: "T",
				I:   s.Intn(g.NX), J: s.Intn(g.NY), K: s.Intn(g.NZ),
				Stddev: 0.1 + s.Float64(),
			})
		}
		if n.Len() == 0 {
			return true
		}
		x := s.NormVec(nil, l.Dim())
		truth := s.NormVec(nil, l.Dim())
		y := n.Sample(truth, s)
		an, err := core.Assimilate(x, sub, n, y)
		if err != nil {
			return false
		}
		if an.Posterior.TotalVariance() > sub.TotalVariance()+1e-9 {
			return false
		}
		if an.ResidualNorm > an.InnovationNorm+1e-9 {
			return false
		}
		return an.Posterior.Check(1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the similarity coefficient is always in [0,1], is 1 for
// identical subspaces, and is symmetric under truncation order for
// equal-rank subspaces built from the same modes.
func TestPropertySimilarityBounds(t *testing.T) {
	master := rng.New(102)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		dim := 10 + s.Intn(20)
		a := randomSubspaceFor(s, dim, 1+s.Intn(5))
		b := randomSubspaceFor(s, dim, 1+s.Intn(5))
		rho := core.SimilarityCoefficient(a, b)
		if rho < -1e-12 || rho > 1+1e-9 {
			return false
		}
		return math.Abs(core.SimilarityCoefficient(a, a)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: perturbations drawn from a subspace stay inside
// span(E) ⊕ white noise: with zero white noise, the residual after
// projecting onto the modes must vanish.
func TestPropertyPerturbationInSpan(t *testing.T) {
	master := rng.New(103)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		dim := 8 + s.Intn(20)
		p := 1 + s.Intn(4)
		sub := randomSubspaceFor(s, dim, p)
		pert := sub.Perturb(nil, s, 0)
		// residual = pert - E Eᵀ pert
		coef := linalg.MatTVec(sub.Modes, pert)
		proj := linalg.MatVec(sub.Modes, coef)
		res := 0.0
		for i := range pert {
			d := pert[i] - proj[i]
			res += d * d
		}
		return math.Sqrt(res) < 1e-9*(1+linalg.Norm2(pert))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DES conserves jobs and produces positive makespans for
// random (but sane) configurations.
func TestPropertySchedulerConservation(t *testing.T) {
	master := rng.New(104)
	c := cluster.MITAvailable(64)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		cfg := sched.DefaultConfig()
		cfg.Seed = uint64(seed)
		if s.Bool(0.5) {
			cfg.Policy = sched.Condor
		}
		if s.Bool(0.5) {
			cfg.IOMode = sched.MixedNFS
		}
		cfg.JobArray = s.Bool(0.5)
		cfg.FailureProb = 0.3 * s.Float64()
		jobs := 1 + s.Intn(150)
		res := sched.Simulate(c, jobs, sched.ESSEJob(), cfg)
		if res.JobsCompleted+res.JobsFailed != jobs {
			return false
		}
		return res.Makespan > 0 && !math.IsNaN(res.Makespan) && !math.IsInf(res.Makespan, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: covstore round-trips arbitrary well-formed matrices.
func TestPropertyCovstoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := covstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	master := rng.New(105)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		r := 1 + s.Intn(30)
		c := 1 + s.Intn(10)
		m := linalg.NewDense(r, c)
		for i := range m.Data {
			m.Data[i] = s.Norm()
		}
		idx := make([]int, c)
		for i := range idx {
			idx[i] = s.Intn(1000)
		}
		if _, err := st.WriteSnapshot(m, idx); err != nil {
			return false
		}
		got, gotIdx, _, err := st.ReadSafe()
		if err != nil || !got.EqualApprox(m, 0) {
			return false
		}
		for i := range idx {
			if gotIdx[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: ncdf round-trips random small datasets bit-exactly.
func TestPropertyNcdfRoundTrip(t *testing.T) {
	master := rng.New(106)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		f := ncdf.New()
		nx, ny := 1+s.Intn(6), 1+s.Intn(6)
		if f.AddDim("x", nx) != nil || f.AddDim("y", ny) != nil {
			return false
		}
		data := s.NormVec(nil, nx*ny)
		if f.AddVar("v", []string{"y", "x"}, map[string]string{"seed": "q"}, data) != nil {
			return false
		}
		var buf bytes.Buffer
		if ncdf.Write(&buf, f) != nil {
			return false
		}
		got, err := ncdf.Read(&buf)
		if err != nil {
			return false
		}
		v, ok := got.Var("v")
		if !ok || len(v.Data) != nx*ny {
			return false
		}
		for i := range data {
			if v.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: hyperslabs agree with direct indexing for random shapes and
// random in-range slabs.
func TestPropertyHyperSlabConsistency(t *testing.T) {
	master := rng.New(107)
	f := func(seed uint16) bool {
		s := master.Split(uint64(seed))
		nx, ny, nz := 2+s.Intn(5), 2+s.Intn(5), 2+s.Intn(4)
		f := ncdf.New()
		_ = f.AddDim("z", nz)
		_ = f.AddDim("y", ny)
		_ = f.AddDim("x", nx)
		data := s.NormVec(nil, nx*ny*nz)
		_ = f.AddVar("v", []string{"z", "y", "x"}, nil, data)
		v, _ := f.Var("v")
		sz := 1 + s.Intn(nz)
		sy := 1 + s.Intn(ny)
		sx := 1 + s.Intn(nx)
		oz := s.Intn(nz - sz + 1)
		oy := s.Intn(ny - sy + 1)
		ox := s.Intn(nx - sx + 1)
		slab, err := f.HyperSlab(v, []int{oz, oy, ox}, []int{sz, sy, sx})
		if err != nil {
			return false
		}
		i := 0
		for z := 0; z < sz; z++ {
			for y := 0; y < sy; y++ {
				for x := 0; x < sx; x++ {
					want := data[(oz+z)*ny*nx+(oy+y)*nx+(ox+x)]
					if slab[i] != want {
						return false
					}
					i++
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
