// Command acoustic-climate computes the "acoustic climate" of a
// simulated coastal region: transmission loss for every combination of
// vertical slice, source depth and frequency, from an ensemble of ocean
// states — the very large ensemble of short acoustics tasks that
// followed the ESSE run in the paper (6000+ jobs of ~3 minutes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"esse/internal/acoustics"
	"esse/internal/grid"
	"esse/internal/metrics"
	"esse/internal/ocean"
	"esse/internal/rng"
)

func main() {
	var (
		nx      = flag.Int("nx", 16, "grid points east")
		ny      = flag.Int("ny", 16, "grid points north")
		nz      = flag.Int("nz", 5, "vertical levels")
		members = flag.Int("members", 4, "ocean ensemble members")
		slices  = flag.Int("slices", 3, "vertical slices per member")
		depths  = flag.String("depths", "10,30,80", "source depths (m, comma list)")
		freqs   = flag.String("freqs", "0.5,1,2", "frequencies (kHz, comma list)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	srcDepths, err := parseFloats(*depths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acoustic-climate:", err)
		os.Exit(2)
	}
	freqsKHz, err := parseFloats(*freqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acoustic-climate:", err)
		os.Exit(2)
	}

	g := grid.MontereyBay(*nx, *ny, *nz)
	master := rng.New(*seed)
	var sections []*acoustics.Section
	for m := 0; m < *members; m++ {
		model := ocean.New(ocean.DefaultConfig(g), master.Split(uint64(m)))
		model.Run(30)
		state := model.State(nil)
		for sl := 0; sl < *slices; sl++ {
			j := (sl + 1) * g.NY / (*slices + 1)
			sec, err := acoustics.ExtractSection(model.Layout, state, 1, j, g.NX-2, j, 2*g.NX)
			if err != nil {
				fmt.Fprintln(os.Stderr, "acoustic-climate:", err)
				os.Exit(1)
			}
			sections = append(sections, sec)
		}
	}

	spec := acoustics.ClimateSpec{
		Sections:     sections,
		SourceDepths: srcDepths,
		FreqsKHz:     freqsKHz,
		Base:         acoustics.DefaultTLConfig(),
		Workers:      *workers,
	}
	fmt.Printf("acoustic climate: %d sections x %d source depths x %d freqs = %d tasks on %d workers\n",
		len(sections), len(srcDepths), len(freqsKHz), spec.TaskCount(), *workers)

	res, err := acoustics.ComputeClimate(context.Background(), spec, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "acoustic-climate:", err)
		os.Exit(1)
	}
	var meanTLs []float64
	var totalTask float64
	for _, t := range res.Tasks {
		meanTLs = append(meanTLs, t.MeanTL)
		totalTask += t.Elapsed.Seconds()
	}
	st := metrics.Stats(meanTLs)
	fmt.Printf("completed %d tasks (%d failed) in %s wall, %.2f s task-seconds\n",
		len(res.Tasks), res.Failed, res.Elapsed.Round(1e6), totalTask)
	fmt.Printf("per-task mean TL: min %.1f dB, max %.1f dB, mean %.1f dB\n", st.Min, st.Max, st.Mean)
	if res.Elapsed.Seconds() > 0 {
		fmt.Printf("throughput: %.1f tasks/s (speedup vs serial ~%.1fx)\n",
			float64(len(res.Tasks))/res.Elapsed.Seconds(), totalTask/res.Elapsed.Seconds())
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}
