// Command esse-serial runs the serial reference implementation of ESSE
// (the paper's Fig. 3) on the same twin experiment as esse-forecast and
// reports the bottleneck structure: no overlapping member executions,
// batch-blocking diff and SVD stages. Use it next to esse-forecast to
// see what the MTC transformation buys.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"esse/internal/core"
	"esse/internal/realtime"
	"esse/internal/trace"
)

func main() {
	var (
		nx      = flag.Int("nx", 14, "grid points east")
		ny      = flag.Int("ny", 14, "grid points north")
		nz      = flag.Int("nz", 4, "vertical levels")
		cycles  = flag.Int("cycles", 2, "forecast/assimilation cycles")
		steps   = flag.Int("steps", 25, "model steps per cycle")
		initial = flag.Int("ensemble", 16, "initial ensemble size N")
		maxSize = flag.Int("max-ensemble", 32, "maximum ensemble size Nmax")
		seed    = flag.Uint64("seed", 1, "master random seed")
	)
	flag.Parse()

	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = *nx, *ny, *nz
	cfg.Cycles = *cycles
	cfg.StepsPerCycle = *steps
	cfg.Seed = *seed
	cfg.Serial = true
	cfg.Ensemble.InitialSize = *initial
	cfg.Ensemble.MaxSize = *maxSize
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: 0.90, MaxVarianceChange: 0.25}

	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esse-serial:", err)
		os.Exit(1)
	}
	fmt.Printf("Serial ESSE (Fig 3 reference): %dx%dx%d grid, state dim %d\n",
		*nx, *ny, *nz, sys.Layout.Dim())
	for k := 0; k < cfg.Cycles; k++ {
		r, err := sys.RunCycle(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "esse-serial:", err)
			os.Exit(1)
		}
		fmt.Printf("cycle %d: rmseF=%.4f rmseA=%.4f members=%d elapsed=%s overlap=%v\n",
			r.Cycle, r.RMSEForecastT, r.RMSEAnalysisT, r.Ensemble.MembersUsed,
			r.Ensemble.Elapsed.Round(1e6),
			r.Ensemble.Timeline.Overlap(trace.SimulationTime))
	}
	fmt.Println("\nNote: overlap=false is the point — the Fig 3 loop exposes no")
	fmt.Println("parallelism; compare wall-clock with esse-forecast on the same flags.")
}
