// Command esse-report is the post-run forensics tool: it merges a
// run's exported observability artifacts — the Chrome trace from
// /trace, the lifecycle log from /events and the metrics exposition
// from /metrics — into a per-cycle digest with phase timing breakdown,
// critical-path extraction, retry/cancel audit and orphan-span
// detection. Inputs are files or http(s) URLs, so it works equally on
// a live telemetry server and on artifacts saved by CI.
//
//	esse-report -trace trace.json -events events.json -metrics metrics.txt
//	esse-report -trace http://localhost:9090/trace -strict
//
// With -strict the exit status is non-zero when the span tree is empty
// or any span's parent chain is broken (orphans) — the causal-
// soundness gate the smoke script runs in CI.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"esse/internal/forensics"
	"esse/internal/telemetry"
)

func main() {
	var (
		traceIn   = flag.String("trace", "", "Chrome trace JSON: file path or http(s) URL (required)")
		eventsIn  = flag.String("events", "", "events page JSON: file path or http(s) URL (optional)")
		metricsIn = flag.String("metrics", "", "Prometheus exposition: file path or http(s) URL (optional)")
		out       = flag.String("out", "", "write the JSON digest to this file ('-' or empty = no JSON, text only)")
		quiet     = flag.Bool("q", false, "suppress the text report")
		strict    = flag.Bool("strict", false, "exit non-zero on an empty span tree or orphan spans")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-fetch timeout for URL inputs")
	)
	flag.Parse()

	lg := telemetry.NewLogger(os.Stderr, slog.LevelInfo)
	if *traceIn == "" {
		lg.Error("missing -trace (file or URL)")
		os.Exit(2)
	}

	tree := loadTrace(lg, *traceIn, *timeout)
	var events *telemetry.EventsPage
	if *eventsIn != "" {
		events = loadEvents(lg, *eventsIn, *timeout)
	}
	var exp *telemetry.Exposition
	if *metricsIn != "" {
		exp = loadMetrics(lg, *metricsIn, *timeout)
	}

	d := forensics.BuildDigest(tree, events, exp)
	if !*quiet {
		fmt.Print(forensics.RenderText(d))
	}
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			lg.Error("creating digest file failed", "path", *out, "err", err.Error())
			os.Exit(1)
		}
		werr := forensics.WriteDigest(f, d)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			lg.Error("writing digest failed", "path", *out, "err", werr.Error())
			os.Exit(1)
		}
	}

	if *strict {
		if d.Spans == 0 {
			lg.Error("strict: span tree is empty")
			os.Exit(1)
		}
		if len(d.Orphans) > 0 {
			lg.Error("strict: orphan spans present", "count", len(d.Orphans))
			os.Exit(1)
		}
	}
}

// slurp reads a file path or an http(s) URL fully into memory. URL
// fetches are bounded by timeout, carry a context deadline, and any
// non-200 answer is an error, not an empty artifact.
func slurp(src string, timeout time.Duration) ([]byte, error) {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		data, err := os.ReadFile(src)
		if err != nil {
			return nil, fmt.Errorf("esse-report: %w", err)
		}
		return data, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src, nil)
	if err != nil {
		return nil, fmt.Errorf("esse-report: %w", err)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("esse-report: fetching %s: %w", src, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("esse-report: fetching %s: status %s", src, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("esse-report: reading %s: %w", src, err)
	}
	return data, nil
}

func loadTrace(lg *telemetry.Logger, src string, timeout time.Duration) *forensics.Tree {
	data, err := slurp(src, timeout)
	if err != nil {
		lg.Error("loading trace failed", "src", src, "err", err.Error())
		os.Exit(1)
	}
	tree, err := forensics.ParseTrace(bytes.NewReader(data))
	if err != nil {
		lg.Error("parsing trace failed", "src", src, "err", err.Error())
		os.Exit(1)
	}
	return tree
}

func loadEvents(lg *telemetry.Logger, src string, timeout time.Duration) *telemetry.EventsPage {
	data, err := slurp(src, timeout)
	if err != nil {
		lg.Error("loading events failed", "src", src, "err", err.Error())
		os.Exit(1)
	}
	page, err := telemetry.ParseEvents(bytes.NewReader(data))
	if err != nil {
		lg.Error("parsing events failed", "src", src, "err", err.Error())
		os.Exit(1)
	}
	return page
}

func loadMetrics(lg *telemetry.Logger, src string, timeout time.Duration) *telemetry.Exposition {
	data, err := slurp(src, timeout)
	if err != nil {
		lg.Error("loading metrics failed", "src", src, "err", err.Error())
		os.Exit(1)
	}
	exp, err := telemetry.ParsePrometheus(bytes.NewReader(data))
	if err != nil {
		lg.Error("parsing metrics failed", "src", src, "err", err.Error())
		os.Exit(1)
	}
	return exp
}
