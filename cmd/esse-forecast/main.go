// Command esse-forecast runs the full real-time ESSE forecasting system
// (the parallel MTC implementation of the paper's Fig. 4) as a twin
// experiment: forecast cycles with ensemble uncertainty prediction,
// adaptive ensemble sizing, and assimilation of synthetic AOSN-II-style
// observations, printing skill diagnostics and the final uncertainty
// maps.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"esse/internal/core"
	"esse/internal/jobdir"
	"esse/internal/metrics"
	"esse/internal/monitor"
	"esse/internal/realtime"
	"esse/internal/telemetry"
	"esse/internal/workflow"
)

func main() {
	var (
		nx       = flag.Int("nx", 14, "grid points east")
		ny       = flag.Int("ny", 14, "grid points north")
		nz       = flag.Int("nz", 4, "vertical levels")
		cycles   = flag.Int("cycles", 3, "forecast/assimilation cycles")
		steps    = flag.Int("steps", 25, "model steps per cycle")
		initial  = flag.Int("ensemble", 16, "initial ensemble size N")
		maxSize  = flag.Int("max-ensemble", 48, "maximum ensemble size Nmax")
		workers  = flag.Int("workers", 8, "concurrent forecast tasks")
		rho      = flag.Float64("rho", 0.90, "subspace similarity convergence threshold")
		seed     = flag.Uint64("seed", 1, "master random seed")
		showMaps = flag.Bool("maps", true, "print Fig 5/6 style uncertainty maps")
		pgmDir   = flag.String("pgm", "", "directory to write PGM uncertainty images (optional)")
		status   = flag.String("status", "", "serve live ensemble progress on this address (e.g. :8090)")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /events, /trace and /debug/pprof on this address (e.g. :9090)")
		traceOut = flag.String("trace-out", "", "write a Chrome trace-event JSON (chrome://tracing) of the run to this file")
		trackDir = flag.String("trackdir", "", "jobdir tracking directory: members persist and restarts skip completed work")
		adaptive = flag.Int("adaptive", 0, "adaptively planned CTD casts per cycle")
		smooth   = flag.Bool("smooth", false, "reanalyze each cycle's start state (ESSE smoother)")
		det      = flag.Bool("deterministic", false, "DO-style deterministic subspace propagation instead of the ensemble")
		verbose  = flag.Bool("v", false, "log debug-level diagnostics")
	)
	flag.Parse()

	// Diagnostics go to stderr as structured log lines; results stay on
	// stdout. The logger is trace-correlated once telemetry is up.
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	lg := telemetry.NewLogger(os.Stderr, level)

	// SIGINT/SIGTERM cancel ctx: the forecast loop stops between model
	// steps and the status/telemetry servers drain gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := realtime.DefaultConfig()
	cfg.NX, cfg.NY, cfg.NZ = *nx, *ny, *nz
	cfg.Cycles = *cycles
	cfg.StepsPerCycle = *steps
	cfg.Seed = *seed
	cfg.Ensemble.InitialSize = *initial
	cfg.Ensemble.MaxSize = *maxSize
	cfg.Ensemble.Workers = *workers
	cfg.Ensemble.Criterion = core.ConvergenceCriterion{MinSimilarity: *rho, MaxVarianceChange: 0.25}
	cfg.AdaptiveCasts = *adaptive
	cfg.Smooth = *smooth
	cfg.Deterministic = *det

	var tel *telemetry.Telemetry
	if *telAddr != "" || *traceOut != "" {
		tel = telemetry.New()
		cfg.Telemetry = tel
		// The run's trace identity derives from the seed: restarting
		// with the same -seed yields the same TraceID in the exported
		// trace, in wire payloads, and across HTTP hops.
		tel.Tracer().SetTraceID(telemetry.DeriveTraceID(*seed))
		lg.Info("tracing enabled", "trace_id", tel.Tracer().TraceID().String(), "seed", *seed)
	}
	if *telAddr != "" {
		sampler := telemetry.StartRuntimeSampler(tel, 0)
		defer sampler.Stop()
		go func() {
			if err := telemetry.Serve(ctx, *telAddr, tel.Handler()); err != nil {
				lg.Error("telemetry server failed", "addr", *telAddr, "err", err.Error())
			}
		}()
		fmt.Printf("telemetry: %s\n", telemetry.DisplayURL(*telAddr, "/metrics"))
	}
	if *status != "" {
		mon := monitor.New(0)
		cfg.Ensemble.OnProgress = mon.Callback()
		go func() {
			// The monitor mux also carries the telemetry endpoints when
			// telemetry is on (tel may be nil; HandlerWith tolerates that).
			if err := telemetry.Serve(ctx, *status, mon.HandlerWith(tel)); err != nil {
				lg.Error("status server failed", "addr", *status, "err", err.Error())
			}
		}()
		fmt.Printf("live progress: %s\n", telemetry.DisplayURL(*status, "/status"))
	}
	if *trackDir != "" {
		cfg.WrapRunner = func(cycle int, r workflow.MemberRunner) workflow.MemberRunner {
			tr, err := jobdir.Open(fmt.Sprintf("%s/cycle-%d", *trackDir, cycle))
			if err != nil {
				lg.Error("opening tracking directory failed", "dir", *trackDir, "cycle", cycle, "err", err.Error())
				os.Exit(1)
			}
			tr.Instrument(tel)
			return jobdir.ResumableRunner(tr, r)
		}
	}

	sys, err := realtime.NewSystem(cfg)
	if err != nil {
		lg.Error("building system failed", "err", err.Error())
		os.Exit(1)
	}
	fmt.Printf("ESSE real-time forecast: %dx%dx%d grid (state dim %d), %d obs/batch\n",
		*nx, *ny, *nz, sys.Layout.Dim(), sys.Network.Len())
	fmt.Printf("%-6s %9s %9s %8s %7s %6s %5s %8s\n",
		"cycle", "rmseF(T)", "rmseA(T)", "members", "SVDs", "rho", "conv", "elapsed")
	for k := 0; k < cfg.Cycles; k++ {
		r, err := sys.RunCycle(ctx)
		if err != nil {
			lg.Error("cycle failed", "cycle", k, "err", err.Error())
			os.Exit(1)
		}
		lg.Debug("cycle complete", "cycle", r.Cycle, "members", r.Ensemble.MembersUsed,
			"svd_rounds", r.Ensemble.SVDRounds, "converged", r.Ensemble.Converged,
			"elapsed", r.Ensemble.Elapsed)
		fmt.Printf("%-6d %9.4f %9.4f %8d %7d %6.3f %5v %8s\n",
			r.Cycle, r.RMSEForecastT, r.RMSEAnalysisT, r.Ensemble.MembersUsed,
			r.Ensemble.SVDRounds, r.Ensemble.Rho, r.Ensemble.Converged,
			r.Ensemble.Elapsed.Round(1e6))
	}

	if *showMaps {
		sst, err := sys.UncertaintyField("T", 0)
		if err == nil {
			fmt.Println("\nSST uncertainty (degC std-dev):")
			fmt.Print(metrics.RenderASCII(sst, *nx, *ny))
		}
		deep, err := sys.UncertaintyField("T", sys.LevelNearestDepth(30))
		if err == nil {
			fmt.Println("\n~30 m temperature uncertainty (degC std-dev):")
			fmt.Print(metrics.RenderASCII(deep, *nx, *ny))
		}
		if *pgmDir != "" {
			if err := os.MkdirAll(*pgmDir, 0o755); err == nil {
				_ = os.WriteFile(*pgmDir+"/fig5_sst_std.pgm", metrics.RenderPGM(sst, *nx, *ny), 0o644)
				_ = os.WriteFile(*pgmDir+"/fig6_30m_std.pgm", metrics.RenderPGM(deep, *nx, *ny), 0o644)
				fmt.Printf("\nwrote %s/fig5_sst_std.pgm and fig6_30m_std.pgm\n", *pgmDir)
			}
		}
	}
	fmt.Println("\nTimelines (Fig 1):")
	fmt.Print(sys.Tl.Render(64))

	if *traceOut != "" {
		// Wall-clock spans plus the paper-time Timeline (one trace second
		// per paper time unit) in one Chrome trace file.
		events := tel.Tracer().ChromeEvents()
		events = append(events, telemetry.TimelineChromeEvents(sys.Tl, time.Second)...)
		f, err := os.Create(*traceOut)
		if err != nil {
			lg.Error("creating trace file failed", "path", *traceOut, "err", err.Error())
			os.Exit(1)
		}
		if err := telemetry.WriteChromeTrace(f, events); err == nil {
			err = f.Close()
		} else {
			// The write error takes precedence over close.
			f.Close()
		}
		if err != nil {
			lg.Error("writing trace failed", "path", *traceOut, "err", err.Error())
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace (%d events) to %s — load in chrome://tracing\n", len(events), *traceOut)
	}
}
