// Command promscrape fetches a Prometheus text exposition over HTTP and
// strictly parses it with internal/telemetry's parser, exiting non-zero
// on any malformed line. CI uses it to verify that a smoke-run binary's
// /metrics endpoint serves a scrapeable exposition; -require asserts
// that specific families are present.
//
//	promscrape -url http://localhost:9090/metrics -require mtc_sim_makespan_seconds
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"esse/internal/telemetry"
)

func main() {
	var (
		url     = flag.String("url", "http://localhost:9090/metrics", "exposition URL to scrape")
		require = flag.String("require", "", "comma-separated metric families that must be present")
		retries = flag.Int("retries", 10, "connection attempts before giving up")
		wait    = flag.Duration("wait", 500*time.Millisecond, "delay between connection attempts")
		parse   = flag.Bool("parse", true, "parse the body as a Prometheus exposition (false: just require a 200 response)")
	)
	flag.Parse()

	body, err := fetch(*url, *retries, *wait)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promscrape:", err)
		os.Exit(1)
	}
	if !*parse {
		fmt.Printf("fetched %d bytes from %s\n", len(body), *url)
		return
	}
	exp, err := telemetry.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promscrape: unparseable exposition:", err)
		os.Exit(1)
	}
	samples := 0
	for _, f := range exp.Families {
		samples += len(f.Samples)
	}
	fmt.Printf("scraped %d families, %d samples from %s\n", len(exp.Families), samples, *url)

	if *require != "" {
		missing := 0
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if exp.Family(name) == nil {
				fmt.Fprintf(os.Stderr, "promscrape: required family %q not found\n", name)
				missing++
			}
		}
		if missing > 0 {
			os.Exit(1)
		}
	}
}

func fetch(url string, retries int, wait time.Duration) ([]byte, error) {
	// A bounded client: a target that accepts the connection and then
	// hangs must not wedge CI forever.
	client := &http.Client{Timeout: 30 * time.Second}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			time.Sleep(wait)
		}
		body, err := scrapeOnce(client, url)
		if err != nil {
			lastErr = err
			continue
		}
		return body, nil
	}
	return nil, fmt.Errorf("after %d attempts: %w", retries, lastErr)
}

// scrapeOnce performs one GET, checking the status line before it
// trusts the body and draining the connection on the error path so the
// next attempt can reuse it.
func scrapeOnce(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A non-200 body is diagnostics at best; drain a bounded amount
		// to free the connection, never parse it.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", url, err)
	}
	return body, nil
}
