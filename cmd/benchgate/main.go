// Command benchgate turns `go test -bench -benchmem` output into a
// committed JSON baseline and gates changes against it. It reads the
// benchmark stream on stdin, extracts ns/op, B/op and allocs/op per
// benchmark, and compares allocs/op against the baseline: allocation
// counts are deterministic enough to gate in CI, while wall time on a
// shared runner is not (ns/op and B/op are recorded for the record but
// never fail the build).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchgate -baseline BENCH_5.json
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchgate -baseline BENCH_5.json -update
//
// A benchmark regresses when its allocs/op exceeds the baseline by more
// than both the relative tolerance and the absolute slack — the slack
// absorbs worker-goroutine count differences across machines with
// different GOMAXPROCS, the relative bound catches real per-iteration
// leaks on the big counts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded cost. Allocs gates; the rest is
// context for humans reading the baseline diff.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// finite reports whether every recorded float is NaN/Inf-free.
// strconv.ParseFloat happily parses "NaN" and "+Inf", and
// encoding/json then fails at runtime writing the baseline — reject
// the line as garbage input instead.
func (m *Metrics) finite() bool {
	return !math.IsNaN(m.NsPerOp) && !math.IsInf(m.NsPerOp, 0) &&
		!math.IsNaN(m.BytesPerOp) && !math.IsInf(m.BytesPerOp, 0) &&
		!math.IsNaN(m.AllocsPerOp) && !math.IsInf(m.AllocsPerOp, 0)
}

// Baseline is the committed BENCH_5.json shape.
type Baseline struct {
	Note       string             `json:"note"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// canonicalName strips the -N the testing package appends to benchmark
// names when GOMAXPROCS != 1, so baselines travel across machines. A
// blanket `-\d+$` strip would also eat parameterized sub-benchmark
// names like AblationSVDCadence/batch-4, so only the exact
// -<GOMAXPROCS> of this process is removed — benchgate consumes the
// stream on the machine that produced it, so the two agree.
func canonicalName(field string) string {
	name := strings.TrimPrefix(field, "Benchmark")
	if procs := runtime.GOMAXPROCS(0); procs != 1 {
		name = strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	return name
}

func parseBench(r *bufio.Scanner) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := canonicalName(fields[0])
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if !seen || !m.finite() {
			continue
		}
		if prev, ok := out[name]; ok && prev.AllocsPerOp > m.AllocsPerOp {
			// -count>1 or duplicate names: keep the worst observation so
			// the gate never passes on a lucky run.
			continue
		}
		out[name] = m
	}
	return out, r.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_5.json", "committed baseline to compare against (or write with -update)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	out := flag.String("out", "", "optional path to write this run's parsed metrics (CI artifact)")
	tolerance := flag.Float64("tolerance", 0.15, "relative allocs/op headroom before a regression fires")
	slack := flag.Float64("slack", 4, "absolute allocs/op headroom (absorbs GOMAXPROCS-dependent worker spawns)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	observed, err := parseBench(sc)
	if err != nil {
		fatalf("reading benchmark stream: %v", err)
	}
	if len(observed) == 0 {
		fatalf("no benchmark results on stdin (run with -bench=. -benchmem)")
	}

	if *out != "" {
		writeJSON(*out, &Baseline{Note: "observed run (not the committed baseline)", Benchmarks: observed})
	}

	if *update {
		writeJSON(*baselinePath, &Baseline{
			Note:       "allocs/op baseline for scripts/bench.sh; regenerate with `make bench-update`",
			Benchmarks: observed,
		})
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *baselinePath, len(observed))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("reading baseline: %v (run `make bench-update` to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := observed[name]
		if !ok {
			fmt.Printf("benchgate: FAIL %-40s missing from run (baseline %.0f allocs/op)\n", name, want.AllocsPerOp)
			regressions++
			continue
		}
		limit := want.AllocsPerOp*(1+*tolerance) + *slack
		if got.AllocsPerOp > limit {
			fmt.Printf("benchgate: FAIL %-40s %.0f allocs/op > limit %.1f (baseline %.0f)\n",
				name, got.AllocsPerOp, limit, want.AllocsPerOp)
			regressions++
		} else if got.AllocsPerOp < want.AllocsPerOp {
			fmt.Printf("benchgate: improved %-36s %.0f allocs/op (baseline %.0f; refresh with `make bench-update`)\n",
				name, got.AllocsPerOp, want.AllocsPerOp)
		}
	}
	var unbaselined []string
	for name := range observed {
		if _, ok := base.Benchmarks[name]; !ok {
			unbaselined = append(unbaselined, name)
		}
	}
	sort.Strings(unbaselined)
	for _, name := range unbaselined {
		fmt.Printf("benchgate: note: %s not in baseline; add it with `make bench-update`\n", name)
	}
	if regressions > 0 {
		fatalf("%d allocation regression(s) against %s", regressions, *baselinePath)
	}
	fmt.Printf("benchgate: %d benchmarks within allocation budget\n", len(names))
}

func writeJSON(path string, b *Baseline) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatalf("encoding %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
