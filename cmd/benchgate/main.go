// Command benchgate turns `go test -bench -benchmem` output into a
// committed JSON baseline and gates changes against it. It reads the
// benchmark stream on stdin, extracts ns/op, B/op and allocs/op per
// benchmark, and compares allocs/op against the baseline: allocation
// counts are deterministic enough to gate in CI, while wall time on a
// shared runner is not (ns/op and B/op are recorded for the record but
// never fail the build).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchgate -baseline BENCH_10.json
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchgate -baseline BENCH_10.json -update
//
// A benchmark regresses when its allocs/op exceeds the baseline by more
// than both the relative tolerance and the absolute slack — the slack
// absorbs worker-goroutine count differences across machines with
// different GOMAXPROCS, the relative bound catches real per-iteration
// leaks on the big counts.
//
// -time-gate opts into gating ns/op too, with a variance-aware
// tolerance: feed a -count>1 stream and the effective headroom is the
// larger of -time-tolerance and -time-spread-mult times the run's own
// relative repetition spread, so a noisy machine widens its own gate
// instead of failing on jitter. -match restricts gating (and the
// missing-from-run and unbaselined checks) to benchmark names matching
// a regexp, which is how CI time-gates only the curated stable linalg
// kernels (scripts/bench.sh -time-linalg) while the full suite stays
// allocation-only (DESIGN §7 documents the policy).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded cost. Allocs gates; the rest is
// context for humans reading the baseline diff.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// finite reports whether every recorded float is NaN/Inf-free.
// strconv.ParseFloat happily parses "NaN" and "+Inf", and
// encoding/json then fails at runtime writing the baseline — reject
// the line as garbage input instead.
func (m *Metrics) finite() bool {
	return !math.IsNaN(m.NsPerOp) && !math.IsInf(m.NsPerOp, 0) &&
		!math.IsNaN(m.BytesPerOp) && !math.IsInf(m.BytesPerOp, 0) &&
		!math.IsNaN(m.AllocsPerOp) && !math.IsInf(m.AllocsPerOp, 0)
}

// Baseline is the committed BENCH_10.json shape.
type Baseline struct {
	Note       string             `json:"note"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// canonicalName strips the -N the testing package appends to benchmark
// names when GOMAXPROCS != 1, so baselines travel across machines. A
// blanket `-\d+$` strip would also eat parameterized sub-benchmark
// names like AblationSVDCadence/batch-4, so only the exact
// -<GOMAXPROCS> of this process is removed — benchgate consumes the
// stream on the machine that produced it, so the two agree.
func canonicalName(field string) string {
	name := strings.TrimPrefix(field, "Benchmark")
	if procs := runtime.GOMAXPROCS(0); procs != 1 {
		name = strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	return name
}

// parseBench returns the merged metrics per benchmark plus every ns/op
// observation (one per -count repetition), which the time gate uses to
// measure this run's own spread.
func parseBench(r *bufio.Scanner) (map[string]Metrics, map[string][]float64, error) {
	out := map[string]Metrics{}
	samples := map[string][]float64{}
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := canonicalName(fields[0])
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if !seen || !m.finite() {
			continue
		}
		samples[name] = append(samples[name], m.NsPerOp)
		if prev, ok := out[name]; ok && prev.AllocsPerOp > m.AllocsPerOp {
			// -count>1 or duplicate names: keep the worst observation so
			// the gate never passes on a lucky run.
			continue
		}
		out[name] = m
	}
	// Record the mean ns/op across repetitions, not whichever duplicate
	// carried the worst allocs: allocation gating wants the worst case,
	// wall-time gating the central tendency.
	for name, ns := range samples {
		m := out[name]
		m.NsPerOp = mean(ns)
		out[name] = m
	}
	return out, samples, r.Err()
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// relSpread is (max-min)/mean over one benchmark's repetitions — the
// run's own noise level, which the time gate's tolerance adapts to.
func relSpread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	m := mean(xs)
	if m <= 0 {
		return 0
	}
	return (hi - lo) / m
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_10.json", "committed baseline to compare against (or write with -update)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	out := flag.String("out", "", "optional path to write this run's parsed metrics (CI artifact)")
	tolerance := flag.Float64("tolerance", 0.15, "relative allocs/op headroom before a regression fires")
	slack := flag.Float64("slack", 4, "absolute allocs/op headroom (absorbs GOMAXPROCS-dependent worker spawns)")
	timeGate := flag.Bool("time-gate", false, "also gate ns/op against the baseline (off by default: shared-runner wall time is noise; opt in via scripts/bench.sh -time-gate)")
	timeTolerance := flag.Float64("time-tolerance", 0.25, "minimum relative ns/op headroom when -time-gate is on")
	timeSpreadMult := flag.Float64("time-spread-mult", 3, "variance adaptation: effective ns/op tolerance is max(time-tolerance, mult × this run's relative repetition spread)")
	match := flag.String("match", "", "regexp restricting gating to matching benchmark names; non-matching baseline entries and observations are ignored (curates the -time-gate subset)")
	flag.Parse()

	var matchRe *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fatalf("bad -match regexp: %v", err)
		}
		matchRe = re
	}
	gated := func(name string) bool { return matchRe == nil || matchRe.MatchString(name) }

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	observed, samples, err := parseBench(sc)
	if err != nil {
		fatalf("reading benchmark stream: %v", err)
	}
	if len(observed) == 0 {
		fatalf("no benchmark results on stdin (run with -bench=. -benchmem)")
	}

	if *out != "" {
		writeJSON(*out, &Baseline{Note: "observed run (not the committed baseline)", Benchmarks: observed})
	}

	if *update {
		writeJSON(*baselinePath, &Baseline{
			Note:       "allocs/op baseline for scripts/bench.sh; regenerate with `make bench-update`",
			Benchmarks: observed,
		})
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *baselinePath, len(observed))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("reading baseline: %v (run `make bench-update` to create it)", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if gated(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if matchRe != nil && len(names) == 0 {
		fatalf("-match %q selects no baselined benchmark", *match)
	}

	regressions := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := observed[name]
		if !ok {
			fmt.Printf("benchgate: FAIL %-40s missing from run (baseline %.0f allocs/op)\n", name, want.AllocsPerOp)
			regressions++
			continue
		}
		limit := want.AllocsPerOp*(1+*tolerance) + *slack
		if got.AllocsPerOp > limit {
			fmt.Printf("benchgate: FAIL %-40s %.0f allocs/op > limit %.1f (baseline %.0f)\n",
				name, got.AllocsPerOp, limit, want.AllocsPerOp)
			regressions++
		} else if got.AllocsPerOp < want.AllocsPerOp {
			fmt.Printf("benchgate: improved %-36s %.0f allocs/op (baseline %.0f; refresh with `make bench-update`)\n",
				name, got.AllocsPerOp, want.AllocsPerOp)
		}
		if *timeGate && want.NsPerOp > 0 {
			tol := *timeTolerance
			if ns := samples[name]; len(ns) > 1 {
				if adaptive := relSpread(ns) * *timeSpreadMult; adaptive > tol {
					tol = adaptive
				}
			}
			if limit := want.NsPerOp * (1 + tol); got.NsPerOp > limit {
				fmt.Printf("benchgate: FAIL %-40s %.0f ns/op > limit %.0f (baseline %.0f, tolerance %.0f%%)\n",
					name, got.NsPerOp, limit, want.NsPerOp, tol*100)
				regressions++
			}
		}
	}
	var unbaselined []string
	for name := range observed {
		if _, ok := base.Benchmarks[name]; !ok && gated(name) {
			unbaselined = append(unbaselined, name)
		}
	}
	sort.Strings(unbaselined)
	for _, name := range unbaselined {
		fmt.Printf("benchgate: note: %s not in baseline; add it with `make bench-update`\n", name)
	}
	if regressions > 0 {
		fatalf("%d regression(s) against %s", regressions, *baselinePath)
	}
	budget := "allocation budget"
	if *timeGate {
		budget = "allocation and wall-time budgets"
	}
	fmt.Printf("benchgate: %d benchmarks within %s\n", len(names), budget)
}

func writeJSON(path string, b *Baseline) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatalf("encoding %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
