package main

import (
	"bufio"
	"runtime"
	"strings"
	"testing"
)

const sampleStream = `
goos: linux
pkg: esse
BenchmarkFig4Parallel     	       1	  11115031 ns/op	         5.037 ensemble-ms	 4526960 B/op	    1130 allocs/op
BenchmarkAblationSVDCadence/batch-4      	       1	  47094592 ns/op	        16.00 svd-rounds	 5523128 B/op	    1595 allocs/op
BenchmarkNoMem            	       5	    200 ns/op
PASS
ok  	esse	0.5s
`

func TestParseBench(t *testing.T) {
	got, _, err := parseBench(bufio.NewScanner(strings.NewReader(sampleStream)))
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := got["Fig4Parallel"]
	if !ok {
		t.Fatalf("Fig4Parallel missing; parsed %v", got)
	}
	if fig.AllocsPerOp != 1130 || fig.BytesPerOp != 4526960 || fig.NsPerOp != 11115031 {
		t.Errorf("Fig4Parallel = %+v", fig)
	}
	// Custom ReportMetric columns (svd-rounds, ensemble-ms) must not be
	// mistaken for the standard units, and a parameterized sub-benchmark
	// name keeps its numeric parameter.
	cad, ok := got["AblationSVDCadence/batch-4"]
	if !ok {
		t.Fatalf("parameterized sub-benchmark name mangled; parsed %v", got)
	}
	if cad.AllocsPerOp != 1595 {
		t.Errorf("batch-4 allocs = %v, want 1595", cad.AllocsPerOp)
	}
	if m, ok := got["NoMem"]; !ok || m.AllocsPerOp != 0 {
		t.Errorf("benchmark without -benchmem columns = %+v, %v", m, ok)
	}
}

func TestParseBenchKeepsWorstDuplicate(t *testing.T) {
	stream := `
BenchmarkX 	1	100 ns/op	8 B/op	3 allocs/op
BenchmarkX 	1	100 ns/op	8 B/op	9 allocs/op
BenchmarkX 	1	100 ns/op	8 B/op	5 allocs/op
`
	got, samples, err := parseBench(bufio.NewScanner(strings.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	if got["X"].AllocsPerOp != 9 {
		t.Errorf("duplicate merge kept %v allocs/op, want the worst (9)", got["X"].AllocsPerOp)
	}
	if len(samples["X"]) != 3 {
		t.Errorf("samples kept %d ns/op observations, want 3", len(samples["X"]))
	}
}

func TestParseBenchMeanNsAcrossRepetitions(t *testing.T) {
	// -count=3 style stream: allocs gates on the worst repetition, but
	// ns/op must come out as the mean — the time gate compares central
	// tendency, not whichever line carried the worst allocs.
	stream := `
BenchmarkY 	1	100 ns/op	8 B/op	3 allocs/op
BenchmarkY 	1	400 ns/op	8 B/op	7 allocs/op
BenchmarkY 	1	100 ns/op	8 B/op	3 allocs/op
`
	got, samples, err := parseBench(bufio.NewScanner(strings.NewReader(stream)))
	if err != nil {
		t.Fatal(err)
	}
	if got["Y"].AllocsPerOp != 7 {
		t.Errorf("allocs = %v, want worst repetition (7)", got["Y"].AllocsPerOp)
	}
	if got["Y"].NsPerOp != 200 {
		t.Errorf("ns/op = %v, want mean across repetitions (200)", got["Y"].NsPerOp)
	}
	if spread := relSpread(samples["Y"]); spread != 1.5 {
		t.Errorf("relSpread = %v, want (400-100)/200 = 1.5", spread)
	}
}

func TestRelSpread(t *testing.T) {
	if got := relSpread([]float64{100}); got != 0 {
		t.Errorf("single observation spread = %v, want 0", got)
	}
	if got := relSpread([]float64{90, 100, 110}); got != 0.2 {
		t.Errorf("spread = %v, want 0.2", got)
	}
	if got := relSpread([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mean spread = %v, want 0 (guarded)", got)
	}
}

func TestCanonicalName(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	// With one proc the testing package appends nothing: a trailing
	// number is part of the benchmark's own name.
	if got := canonicalName("BenchmarkA/batch-4"); got != "A/batch-4" {
		t.Errorf("procs=1: %q", got)
	}

	runtime.GOMAXPROCS(4)
	if got := canonicalName("BenchmarkA/batch-4-4"); got != "A/batch-4" {
		t.Errorf("procs=4 strips one suffix: %q", got)
	}
	if got := canonicalName("BenchmarkStepParallel48x4-4"); got != "StepParallel48x4" {
		t.Errorf("procs=4: %q", got)
	}
}
