// Command opendap-server publishes simulated ocean model states over the
// OpenDAP-like protocol of internal/opendap — the home-institution data
// server of the paper's Section 5.3.2, from which remote execution hosts
// read shared input files. It can also act as the client, fetching a
// variable hyperslab from a running server.
//
// Server:  opendap-server -listen :8080
// Client:  opendap-server -fetch http://host:8080 -dataset forecast-000 -var T
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"esse/internal/grid"
	"esse/internal/metrics"
	"esse/internal/ncdf"
	"esse/internal/ocean"
	"esse/internal/opendap"
	"esse/internal/rng"
	"esse/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "server listen address")
		members = flag.Int("members", 3, "forecast members to publish")
		nx      = flag.Int("nx", 16, "grid points east")
		ny      = flag.Int("ny", 16, "grid points north")
		nz      = flag.Int("nz", 4, "vertical levels")
		seed    = flag.Uint64("seed", 1, "random seed")
		telAddr = flag.String("telemetry-addr", "", "serve /metrics, /events, /trace and /debug/pprof on this address (e.g. :9090)")

		fetch   = flag.String("fetch", "", "client mode: base URL of a running server")
		dataset = flag.String("dataset", "forecast-000", "client: dataset name")
		varName = flag.String("var", "T", "client: variable to fetch")
		slab    = flag.String("slab", "", "client: start/count as 'i,j,k:di,dj,dk' (empty = full)")
	)
	flag.Parse()

	if *fetch != "" {
		runClient(*fetch, *dataset, *varName, *slab)
		return
	}

	// SIGINT/SIGTERM cancel ctx, which drains both HTTP servers
	// gracefully instead of dropping in-flight hyperslab reads.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g := grid.MontereyBay(*nx, *ny, *nz)
	master := rng.New(*seed)
	srv := opendap.NewServer()
	if *telAddr != "" {
		tel := telemetry.New()
		srv.Instrument(tel)
		sampler := telemetry.StartRuntimeSampler(tel, 0)
		defer sampler.Stop()
		go func() {
			if err := telemetry.Serve(ctx, *telAddr, tel.Handler()); err != nil {
				log.Println("telemetry server:", err)
			}
		}()
		log.Printf("telemetry on %s", telemetry.DisplayURL(*telAddr, "/metrics"))
	}
	for m := 0; m < *members; m++ {
		st := master.Split(uint64(m))
		cfg := ocean.DefaultConfig(g)
		cfg.Climo = cfg.Climo.Jitter(st)
		model := ocean.New(cfg, st.Split(1))
		model.Run(20)
		f, err := ncdf.FromState(model.Layout, model.State(nil),
			map[string]string{"member": fmt.Sprint(m), "region": "monterey-bay"})
		if err != nil {
			log.Fatal(err)
		}
		srv.Publish(fmt.Sprintf("forecast-%03d", m), f)
	}
	log.Printf("serving %d forecast datasets on %s (endpoints: /datasets /dds/{name} /dods/{name})",
		*members, *listen)
	if err := telemetry.Serve(ctx, *listen, srv.Handler()); err != nil {
		log.Fatal(err)
	}
	log.Println("shutdown complete")
}

func runClient(base, dataset, varName, slab string) {
	c := opendap.NewClient(base)
	names, err := c.Datasets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server offers %d datasets: %v\n", len(names), names)
	dds, err := c.DDS(dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dds)

	var start, count []int
	if slab != "" {
		parts := strings.SplitN(slab, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "bad -slab; want 'i,j,k:di,dj,dk'")
			os.Exit(2)
		}
		start = mustInts(parts[0])
		count = mustInts(parts[1])
	}
	data, err := c.Fetch(dataset, varName, start, count)
	if err != nil {
		log.Fatal(err)
	}
	st := metrics.Stats(data)
	fmt.Printf("fetched %d values of %s: min %.4g max %.4g mean %.4g\n",
		len(data), varName, st.Min, st.Max, st.Mean)
}

func mustInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
