// Command opendap-server publishes simulated ocean model states over the
// OpenDAP-like protocol of internal/opendap — the home-institution data
// server of the paper's Section 5.3.2, from which remote execution hosts
// read shared input files. It can also act as the client, fetching a
// variable hyperslab from a running server.
//
// Server:  opendap-server -listen :8080
// Client:  opendap-server -fetch http://host:8080 -dataset forecast-000 -var T
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"esse/internal/grid"
	"esse/internal/metrics"
	"esse/internal/ncdf"
	"esse/internal/ocean"
	"esse/internal/opendap"
	"esse/internal/rng"
	"esse/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "server listen address")
		members = flag.Int("members", 3, "forecast members to publish")
		nx      = flag.Int("nx", 16, "grid points east")
		ny      = flag.Int("ny", 16, "grid points north")
		nz      = flag.Int("nz", 4, "vertical levels")
		seed    = flag.Uint64("seed", 1, "random seed")
		telAddr = flag.String("telemetry-addr", "", "serve /metrics, /events, /trace and /debug/pprof on this address (e.g. :9090)")

		fetch   = flag.String("fetch", "", "client mode: base URL of a running server")
		dataset = flag.String("dataset", "forecast-000", "client: dataset name")
		varName = flag.String("var", "T", "client: variable to fetch")
		slab    = flag.String("slab", "", "client: start/count as 'i,j,k:di,dj,dk' (empty = full)")
	)
	flag.Parse()

	// Diagnostics are structured stderr log lines (trace-correlated once
	// telemetry is up); dataset listings and stats stay on stdout.
	lg := telemetry.NewLogger(os.Stderr, slog.LevelInfo)

	if *fetch != "" {
		runClient(lg, *fetch, *dataset, *varName, *slab)
		return
	}

	// SIGINT/SIGTERM cancel ctx, which drains both HTTP servers
	// gracefully instead of dropping in-flight hyperslab reads.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g := grid.MontereyBay(*nx, *ny, *nz)
	master := rng.New(*seed)
	srv := opendap.NewServer()
	if *telAddr != "" {
		tel := telemetry.New()
		tel.Tracer().SetTraceID(telemetry.DeriveTraceID(*seed))
		srv.Instrument(tel)
		sampler := telemetry.StartRuntimeSampler(tel, 0)
		defer sampler.Stop()
		go func() {
			if err := telemetry.Serve(ctx, *telAddr, tel.Handler()); err != nil {
				lg.Error("telemetry server failed", "addr", *telAddr, "err", err.Error())
			}
		}()
		lg.Info("telemetry serving", "url", telemetry.DisplayURL(*telAddr, "/metrics"))
	}
	for m := 0; m < *members; m++ {
		st := master.Split(uint64(m))
		cfg := ocean.DefaultConfig(g)
		cfg.Climo = cfg.Climo.Jitter(st)
		model := ocean.New(cfg, st.Split(1))
		model.Run(20)
		f, err := ncdf.FromState(model.Layout, model.State(nil),
			map[string]string{"member": fmt.Sprint(m), "region": "monterey-bay"})
		if err != nil {
			lg.Error("building dataset failed", "member", m, "err", err.Error())
			os.Exit(1)
		}
		srv.Publish(fmt.Sprintf("forecast-%03d", m), f)
	}
	lg.Info("serving forecast datasets", "members", *members, "addr", *listen,
		"endpoints", "/datasets /dds/{name} /dods/{name}")
	if err := telemetry.Serve(ctx, *listen, srv.Handler()); err != nil {
		lg.Error("server failed", "addr", *listen, "err", err.Error())
		os.Exit(1)
	}
	lg.Info("shutdown complete")
}

func runClient(lg *telemetry.Logger, base, dataset, varName, slab string) {
	c := opendap.NewClient(base)
	names, err := c.Datasets()
	if err != nil {
		lg.Error("listing datasets failed", "base", base, "err", err.Error())
		os.Exit(1)
	}
	fmt.Printf("server offers %d datasets: %v\n", len(names), names)
	dds, err := c.DDS(dataset)
	if err != nil {
		lg.Error("DDS fetch failed", "dataset", dataset, "err", err.Error())
		os.Exit(1)
	}
	fmt.Print(dds)

	var start, count []int
	if slab != "" {
		parts := strings.SplitN(slab, ":", 2)
		if len(parts) != 2 {
			lg.Error("bad -slab; want 'i,j,k:di,dj,dk'", "slab", slab)
			os.Exit(2)
		}
		start = mustInts(lg, parts[0])
		count = mustInts(lg, parts[1])
	}
	data, err := c.Fetch(dataset, varName, start, count)
	if err != nil {
		lg.Error("hyperslab fetch failed", "dataset", dataset, "var", varName, "err", err.Error())
		os.Exit(1)
	}
	st := metrics.Stats(data)
	fmt.Printf("fetched %d values of %s: min %.4g max %.4g mean %.4g\n",
		len(data), varName, st.Min, st.Max, st.Mean)
}

func mustInts(lg *telemetry.Logger, s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			lg.Error("bad integer in -slab", "value", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
