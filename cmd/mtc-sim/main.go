// Command mtc-sim drives the discrete-event simulation of the ESSE
// many-task workload on the paper's MIT cluster: SGE vs Condor
// scheduling, prestaged-local vs mixed-NFS I/O, job arrays vs singleton
// submissions, and failure injection (Section 5.2).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"esse/internal/cluster"
	"esse/internal/sched"
	"esse/internal/telemetry"
)

func main() {
	var (
		jobs     = flag.Int("jobs", 600, "number of ensemble member jobs")
		cores    = flag.Int("cores", 210, "available cores")
		policy   = flag.String("policy", "sge", "scheduler policy: sge | condor")
		iomode   = flag.String("io", "local", "input I/O mode: local | nfs")
		workload = flag.String("workload", "esse", "job type: esse | acoustic")
		array    = flag.Bool("array", true, "submit as a job array")
		batch    = flag.Int("batch", 1, "pack this many members per scheduler job (section 5.3.4)")
		failure  = flag.Float64("failure", 0, "per-job failure probability")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		matrix   = flag.Bool("matrix", false, "run the full section 5.2.1 configuration matrix")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /events, /trace and /debug/pprof on this address (e.g. :9090)")
		telHold  = flag.Duration("telemetry-hold", 0, "keep the telemetry server up this long after the run (for scrapers)")
	)
	flag.Parse()

	// Diagnostics are structured stderr log lines; results stay on stdout.
	lg := telemetry.NewLogger(os.Stderr, slog.LevelInfo)

	// SIGINT/SIGTERM cancel ctx so a held telemetry server drains
	// gracefully instead of dying mid-scrape.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tel *telemetry.Telemetry
	if *telAddr != "" {
		tel = telemetry.New()
		// Seed-stable trace identity: reruns with the same -seed produce
		// the same TraceID on /trace, so digests are comparable.
		tel.Tracer().SetTraceID(telemetry.DeriveTraceID(*seed))
		sampler := telemetry.StartRuntimeSampler(tel, 0)
		defer sampler.Stop()
		go func() {
			if err := telemetry.Serve(ctx, *telAddr, tel.Handler()); err != nil {
				lg.Error("telemetry server failed", "addr", *telAddr, "err", err.Error())
			}
		}()
		fmt.Printf("telemetry: %s\n", telemetry.DisplayURL(*telAddr, "/metrics"))
	}

	c := cluster.MITAvailable(*cores)
	spec := sched.ESSEJob()
	if *workload == "acoustic" {
		spec = sched.AcousticJob()
	}

	if *matrix {
		runMatrix(c, *jobs, *seed)
		return
	}

	cfg := sched.DefaultConfig()
	cfg.Seed = *seed
	cfg.JobArray = *array
	cfg.FailureProb = *failure
	switch *policy {
	case "sge":
		cfg.Policy = sched.SGE
	case "condor":
		cfg.Policy = sched.Condor
	default:
		lg.Error("unknown policy", "policy", *policy)
		os.Exit(2)
	}
	switch *iomode {
	case "local":
		cfg.IOMode = sched.LocalPrestaged
	case "nfs":
		cfg.IOMode = sched.MixedNFS
	default:
		lg.Error("unknown io mode", "io", *iomode)
		os.Exit(2)
	}
	if *workload == "acoustic" {
		cfg.PrestageMB = 0
		cfg.IOMode = sched.MixedNFS
	}

	sp := tel.Span("mtc-sim", "simulate", -1, 0)
	res := sched.SimulateBatched(c, *jobs, spec, cfg, *batch)
	sp.End()
	fmt.Printf("workload=%s jobs=%d cores=%d policy=%v io=%v array=%v batch=%d\n",
		*workload, *jobs, *cores, cfg.Policy, cfg.IOMode, cfg.JobArray, *batch)
	printResult(res)

	if tel != nil {
		publishResult(tel, res)
		if *telHold > 0 {
			fmt.Printf("holding telemetry server for %v\n", *telHold)
			select {
			case <-time.After(*telHold):
			case <-ctx.Done():
			}
		}
	}
}

// publishResult exposes the simulation outcome as gauges so a scraper
// sees the run's headline numbers on /metrics.
func publishResult(tel *telemetry.Telemetry, res *sched.Result) {
	tel.Gauge("mtc_sim_makespan_seconds", "Simulated makespan of the workload.").Set(res.Makespan)
	tel.Gauge("mtc_sim_jobs", "Simulated jobs by final outcome.", "outcome", "completed").Set(float64(res.JobsCompleted))
	tel.Gauge("mtc_sim_jobs", "Simulated jobs by final outcome.", "outcome", "failed").Set(float64(res.JobsFailed))
	tel.Gauge("mtc_sim_pert_cpu_utilization", "Perturbation-phase CPU utilization (0..1).").Set(res.PertCPUUtilization)
	tel.Gauge("mtc_sim_mean_dispatch_delay_seconds", "Mean scheduler dispatch delay.").Set(res.MeanDispatchDelay)
	tel.Gauge("mtc_sim_nfs_megabytes_moved", "Simulated NFS traffic.").Set(res.NFSMBMoved)
}

func runMatrix(c *cluster.Cluster, jobs int, seed uint64) {
	fmt.Printf("Section 5.2.1 configuration matrix (%d jobs, %d cores):\n\n", jobs, c.TotalCores())
	fmt.Printf("%-8s %-10s %10s %10s %10s\n", "policy", "io", "makespan", "pert-util", "disp-delay")
	for _, pol := range []sched.Policy{sched.SGE, sched.Condor} {
		for _, io := range []sched.IOMode{sched.LocalPrestaged, sched.MixedNFS} {
			cfg := sched.DefaultConfig()
			cfg.Seed = seed
			cfg.Policy = pol
			cfg.IOMode = io
			res := sched.Simulate(c, jobs, sched.ESSEJob(), cfg)
			fmt.Printf("%-8v %-10v %8.1f m %9.0f%% %8.1f s\n",
				pol, io, res.Makespan/60, res.PertCPUUtilization*100, res.MeanDispatchDelay)
		}
	}
	fmt.Println("\npaper reference: ~77 min all-local, ~86 min mixed-NFS under SGE;")
	fmt.Println("Condor 10-20% slower; pert CPU utilization 20% -> 100% with prestaging.")
}

func printResult(res *sched.Result) {
	fmt.Printf("  makespan        : %.1f min (%.0f s)\n", res.Makespan/60, res.Makespan)
	fmt.Printf("  completed/failed: %d / %d\n", res.JobsCompleted, res.JobsFailed)
	fmt.Printf("  pert CPU util   : %.0f%%\n", res.PertCPUUtilization*100)
	fmt.Printf("  dispatch delay  : %.1f s mean\n", res.MeanDispatchDelay)
	fmt.Printf("  NFS traffic     : %.1f GB\n", res.NFSMBMoved/1000)
	fmt.Printf("  job residence   : mean %.1f s, max %.1f s\n", res.MeanJobSeconds, res.MaxJobSeconds)
}
