// Command repro regenerates every table and figure of the paper's
// evaluation section from the Go reproduction. With no flags it runs the
// full suite; individual experiments can be selected with flags.
//
// Usage:
//
//	repro [-table1] [-table2] [-timings] [-cost] [-fig1] [-fig2]
//	      [-fig34] [-fig56] [-members N] [-cores N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"esse/internal/experiments"
	"esse/internal/realtime"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "Table 1: TeraGrid host timings")
		table2  = flag.Bool("table2", false, "Table 2: EC2 instance timings")
		timings = flag.Bool("timings", false, "section 5.2.1 local-cluster timings")
		cost    = flag.Bool("cost", false, "section 5.4.2 EC2 cost example")
		fig1    = flag.Bool("fig1", false, "Fig 1: forecasting timelines")
		fig2    = flag.Bool("fig2", false, "Fig 2: one ESSE cycle")
		fig34   = flag.Bool("fig34", false, "Figs 3/4: serial vs parallel workflow")
		fig56   = flag.Bool("fig56", false, "Figs 5/6: uncertainty forecast maps")
		members = flag.Int("members", 600, "ensemble size for the cluster timings")
		cores   = flag.Int("cores", 210, "available cores for the cluster timings")
		seed    = flag.Uint64("seed", 1, "master random seed")
	)
	flag.Parse()

	all := !(*table1 || *table2 || *timings || *cost || *fig1 || *fig2 || *fig34 || *fig56)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	rtCfg := realtime.DefaultConfig()
	rtCfg.Seed = *seed

	if all || *table1 {
		_, text := experiments.Table1()
		fmt.Println(text)
	}
	if all || *table2 {
		_, text := experiments.Table2()
		fmt.Println(text)
	}
	if all || *timings {
		_, text := experiments.LocalTimings(*members, 6000, *cores, *seed)
		fmt.Println(text)
	}
	if all || *cost {
		_, text := experiments.CostExample()
		fmt.Println(text)
	}
	if all || *fig1 {
		_, text, err := experiments.Fig1Timelines(rtCfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	}
	if all || *fig2 {
		_, text, err := experiments.Fig2ESSECycle(rtCfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	}
	if all || *fig34 {
		_, text, err := experiments.Fig3Fig4Comparison(24, 8, 10*time.Millisecond, 100, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	}
	if all || *fig56 {
		_, text, err := experiments.Fig5Fig6Uncertainty(rtCfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(text)
	}
}
