// Command esselint runs the repository's custom determinism,
// numerical-safety and concurrency analyzers (see esse/internal/lint)
// over the given package patterns, bundled with the stock `go vet`
// passes, and exits non-zero on any finding:
//
//	go run ./cmd/esselint ./...
//	go run ./cmd/esselint -vet=false ./internal/workflow
//	go run ./cmd/esselint -json ./...   # one JSON object per diagnostic
//	go run ./cmd/esselint -audit ./...  # validate //esselint:allow directives
//
// It is the lint stage of scripts/verify.sh and `make verify`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"esse/internal/lint"
)

// jsonDiag is the wire form of one diagnostic in -json mode.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// statsJSON is the artifact form of one run's stats (-stats-json):
// fact-table sizes and per-analyzer wall times, written as a single
// JSON object so CI can diff analyzer cost across runs.
type statsJSON struct {
	ProgramBuildNs   int64              `json:"program_build_ns"`
	Funcs            int                `json:"funcs"`
	SCCs             int                `json:"sccs"`
	EffectFacts      int                `json:"effect_facts"`
	NumericSummaries int                `json:"numeric_summaries"`
	LockSummaryKeys  int                `json:"lock_summary_keys"`
	LockPairs        int                `json:"lock_pairs"`
	CtxParams        int                `json:"ctx_params"`
	AtomicKeys       int                `json:"atomic_keys"`
	EntryHeldFuncs   int                `json:"entry_held_funcs"`
	WireTypes        int                `json:"wire_types"`
	FSMTables        int                `json:"fsm_tables"`
	FSMTransitions   int                `json:"fsm_transitions"`
	Obligations      int                `json:"obligations"`
	DimSummaries     int                `json:"dim_summaries"`
	DimRequires      int                `json:"dim_requires"`
	UnitFacts        int                `json:"unit_facts"`
	Analyzers        []analyzerStatJSON `json:"analyzers"`
}

type analyzerStatJSON struct {
	Name       string `json:"name"`
	WallNs     int64  `json:"wall_ns"`
	Findings   int    `json:"findings"`
	Suppressed int    `json:"suppressed"`
}

func main() {
	vet := flag.Bool("vet", true, "also run the stock `go vet` passes on the same patterns")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic (including suppressed ones) instead of text")
	audit := flag.Bool("audit", false, "list every //esselint:allow[file] directive; exit non-zero on directives with no reason or an unknown analyzer")
	stats := flag.Bool("stats", false, "print per-analyzer wall time and interprocedural fact counts to stderr after the run")
	statsJSONPath := flag.String("stats-json", "", "write the fact counts and per-analyzer wall times as a JSON object to this file")
	escapes := flag.Bool("escapes", false, "cross-check hotalloc/boxing findings against the compiler's escape analysis (go build -gcflags=-m): heap facts confirm, stack facts suppress")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: esselint [flags] [package patterns]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the ESSE determinism/concurrency analyzers (default patterns: ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esselint:", err)
		os.Exit(2)
	}

	if *audit {
		os.Exit(runAudit(pkgs, analyzers))
	}

	failed := false
	diags, runStats, err := lint.RunAnalyzersStats(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esselint:", err)
		os.Exit(2)
	}
	if *escapes {
		facts, err := lint.LoadEscapeFacts("", patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esselint:", err)
			os.Exit(2)
		}
		cc := lint.CrossCheck(diags, facts)
		if *stats {
			source := "recompiled"
			if facts.Cached {
				source = "cache hit"
			}
			fmt.Fprintf(os.Stderr, "esselint: stats: escape facts (%s): %d heap, %d stack; findings %d compiler-confirmed, %d downgraded to stack\n",
				source, facts.HeapCount(), facts.StackCount(), cc.Confirmed, cc.Downgraded)
		}
	}
	if *stats {
		printStats(runStats)
	}
	if *statsJSONPath != "" {
		if err := writeStatsJSON(*statsJSONPath, runStats); err != nil {
			fmt.Fprintln(os.Stderr, "esselint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "esselint:", err)
				os.Exit(2)
			}
			if !d.Suppressed {
				failed = true
			}
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Println(d)
			failed = true
		}
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

// printStats reports where the run spent its time, so analyzer
// slowdowns show up in CI logs instead of silently stretching the
// verify stage.
func printStats(s *lint.RunStats) {
	fmt.Fprintf(os.Stderr, "esselint: stats: call graph %d funcs in %d SCCs; summaries: %d effect, %d numeric, %d lock keys, %d lock pairs; program build %v\n",
		s.Funcs, s.SCCs, s.EffectFacts, s.NumericSummaries, s.LockSummaryKeys, s.LockPairs, s.ProgramWall.Round(time.Microsecond))
	fmt.Fprintf(os.Stderr, "esselint: stats: concurrency facts: %d ctx-taking funcs, %d atomic keys, %d funcs entered with locks held\n",
		s.CtxParams, s.AtomicKeys, s.EntryHeldFuncs)
	fmt.Fprintf(os.Stderr, "esselint: stats: wire facts: %d types reaching a json sink\n", s.WireTypes)
	fmt.Fprintf(os.Stderr, "esselint: stats: lifecycle facts: %d fsm tables carrying %d transitions; %d obligations tracked\n",
		s.FSMTables, s.FSMTransitions, s.Obligations)
	fmt.Fprintf(os.Stderr, "esselint: stats: dimension facts: %d shape summaries carrying %d requirements; %d unit annotations\n",
		s.DimSummaries, s.DimRequires, s.UnitFacts)
	for _, a := range s.Analyzers {
		fmt.Fprintf(os.Stderr, "esselint: stats: %-16s %10v  findings=%d suppressed=%d\n",
			a.Name, a.Wall.Round(time.Microsecond), a.Findings, a.Suppressed)
	}
}

// writeStatsJSON writes the run's stats as one JSON object, the CI
// analyzer-cost artifact.
func writeStatsJSON(path string, s *lint.RunStats) error {
	out := statsJSON{
		ProgramBuildNs:   s.ProgramWall.Nanoseconds(),
		Funcs:            s.Funcs,
		SCCs:             s.SCCs,
		EffectFacts:      s.EffectFacts,
		NumericSummaries: s.NumericSummaries,
		LockSummaryKeys:  s.LockSummaryKeys,
		LockPairs:        s.LockPairs,
		CtxParams:        s.CtxParams,
		AtomicKeys:       s.AtomicKeys,
		EntryHeldFuncs:   s.EntryHeldFuncs,
		WireTypes:        s.WireTypes,
		FSMTables:        s.FSMTables,
		FSMTransitions:   s.FSMTransitions,
		Obligations:      s.Obligations,
		DimSummaries:     s.DimSummaries,
		DimRequires:      s.DimRequires,
		UnitFacts:        s.UnitFacts,
	}
	for _, a := range s.Analyzers {
		out.Analyzers = append(out.Analyzers, analyzerStatJSON{
			Name:       a.Name,
			WallNs:     a.Wall.Nanoseconds(),
			Findings:   a.Findings,
			Suppressed: a.Suppressed,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runAudit prints the tree's suppression directives and returns the
// process exit code: 1 if any directive is missing a reason, names an
// unknown analyzer, or no longer suppresses any finding; 0 otherwise.
func runAudit(pkgs []*lint.Package, analyzers []*lint.Analyzer) int {
	dirs := lint.CollectDirectives(pkgs)
	for _, d := range dirs {
		fmt.Println(d)
	}
	problems := lint.AuditDirectives(dirs, analyzers)
	diags, err := lint.RunAnalyzersAll(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esselint:", err)
		return 2
	}
	problems = append(problems, lint.AuditUnusedDirectives(dirs, diags)...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "esselint: audit:", p)
	}
	fmt.Printf("esselint: audit: %d directive(s), %d problem(s)\n", len(dirs), len(problems))
	if len(problems) > 0 {
		return 1
	}
	return 0
}
