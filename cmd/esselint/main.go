// Command esselint runs the repository's custom determinism and
// concurrency analyzers (see esse/internal/lint) over the given package
// patterns, bundled with the stock `go vet` passes, and exits non-zero
// on any finding:
//
//	go run ./cmd/esselint ./...
//	go run ./cmd/esselint -vet=false ./internal/workflow
//
// It is the lint stage of scripts/verify.sh and `make verify`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"esse/internal/lint"
)

func main() {
	vet := flag.Bool("vet", true, "also run the stock `go vet` passes on the same patterns")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: esselint [flags] [package patterns]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the ESSE determinism/concurrency analyzers (default patterns: ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esselint:", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esselint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	failed = len(diags) > 0

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}
